#include "net/protocol.h"

#include <bit>
#include <cstring>

namespace hpcap::net {

namespace {

[[noreturn]] void malformed(const std::string& what) {
  throw ProtocolError("wire protocol: " + what);
}

std::size_t checked_count(std::uint64_t n, std::size_t cap,
                          const char* what) {
  if (n > cap)
    malformed(std::string(what) + " count " + std::to_string(n) +
              " exceeds cap " + std::to_string(cap));
  return static_cast<std::size_t>(n);
}

}  // namespace

// --- writer --------------------------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  if (s.size() > kMaxString)
    throw ProtocolError("wire protocol: string too long to encode");
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

// --- reader --------------------------------------------------------------

std::uint8_t PayloadReader::read_u8() {
  if (remaining() < 1) malformed("truncated u8");
  return data_[pos_++];
}

std::uint16_t PayloadReader::read_u16() {
  if (remaining() < 2) malformed("truncated u16");
  const std::uint16_t v = static_cast<std::uint16_t>(
      data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

std::uint32_t PayloadReader::read_u32() {
  if (remaining() < 4) malformed("truncated u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t PayloadReader::read_u64() {
  if (remaining() < 8) malformed("truncated u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

std::int32_t PayloadReader::read_i32() {
  return static_cast<std::int32_t>(read_u32());
}

double PayloadReader::read_f64() {
  return std::bit_cast<double>(read_u64());
}

std::string PayloadReader::read_string() {
  const std::size_t n = checked_count(read_u32(), kMaxString, "string");
  if (remaining() < n) malformed("truncated string body");
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

void PayloadReader::expect_done(const char* what) const {
  if (remaining() != 0)
    malformed(std::string(what) + ": " + std::to_string(remaining()) +
              " trailing bytes");
}

// --- framing -------------------------------------------------------------

std::optional<FrameHeader> peek_header(
    std::span<const std::uint8_t> buffer) {
  if (buffer.size() < kHeaderSize) return std::nullopt;
  PayloadReader r(buffer.first(kHeaderSize));
  const std::uint32_t magic = r.read_u32();
  if (magic != kMagic) malformed("bad magic");
  FrameHeader h;
  h.version = r.read_u8();
  if (h.version != kProtocolVersion)
    malformed("unsupported protocol version " + std::to_string(h.version));
  const std::uint8_t type = r.read_u8();
  if (type < 1 || type > 6)
    malformed("unknown frame type " + std::to_string(type));
  h.type = static_cast<FrameType>(type);
  if (r.read_u16() != 0) malformed("nonzero reserved field");
  h.payload_size = r.read_u32();
  if (h.payload_size > kMaxPayload)
    malformed("payload size " + std::to_string(h.payload_size) +
              " exceeds cap");
  return h;
}

std::vector<std::uint8_t> encode_frame(
    FrameType type, std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxPayload)
    throw ProtocolError("wire protocol: payload too large to encode");
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + payload.size());
  put_u32(out, kMagic);
  put_u8(out, kProtocolVersion);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u16(out, 0);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

// --- HELLO ---------------------------------------------------------------

std::vector<std::uint8_t> encode_hello_request(const HelloRequest& req) {
  std::vector<std::uint8_t> p;
  put_string(p, req.agent);
  put_string(p, req.level);
  put_u16(p, req.num_tiers);
  put_u16(p, req.window);
  return encode_frame(FrameType::kHello, p);
}

HelloRequest decode_hello_request(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  HelloRequest req;
  req.agent = r.read_string();
  req.level = r.read_string();
  req.num_tiers = r.read_u16();
  req.window = r.read_u16();
  r.expect_done("HELLO request");
  return req;
}

std::vector<std::uint8_t> encode_hello_reply(const HelloReply& rep) {
  std::vector<std::uint8_t> p;
  put_u8(p, rep.accepted ? 1 : 0);
  put_string(p, rep.message);
  put_u16(p, rep.num_tiers);
  put_u16(p, rep.window);
  put_u32(p, rep.model_version);
  if (rep.dims.size() > kMaxTiers)
    throw ProtocolError("wire protocol: too many tiers to encode");
  put_u16(p, static_cast<std::uint16_t>(rep.dims.size()));
  for (std::uint16_t d : rep.dims) put_u16(p, d);
  return encode_frame(FrameType::kHello, p);
}

HelloReply decode_hello_reply(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  HelloReply rep;
  rep.accepted = r.read_u8() != 0;
  rep.message = r.read_string();
  rep.num_tiers = r.read_u16();
  rep.window = r.read_u16();
  rep.model_version = r.read_u32();
  const std::size_t n = checked_count(r.read_u16(), kMaxTiers, "tier");
  rep.dims.resize(n);
  for (auto& d : rep.dims) d = r.read_u16();
  r.expect_done("HELLO reply");
  return rep;
}

// --- SAMPLE_BATCH --------------------------------------------------------

std::vector<std::uint8_t> encode_sample_batch(const SampleBatch& batch) {
  if (batch.ticks.size() > kMaxTicksPerBatch)
    throw ProtocolError("wire protocol: too many ticks to encode");
  std::vector<std::uint8_t> p;
  put_u32(p, batch.first_tick);
  put_u16(p, static_cast<std::uint16_t>(batch.ticks.size()));
  for (const Tick& tick : batch.ticks) {
    if (tick.tiers.size() > kMaxTiers)
      throw ProtocolError("wire protocol: too many tiers to encode");
    put_u16(p, static_cast<std::uint16_t>(tick.tiers.size()));
    for (const TierSlot& slot : tick.tiers) {
      put_u8(p, slot.present ? 1 : 0);
      if (!slot.present) continue;
      if (slot.values.size() > kMaxRowDim)
        throw ProtocolError("wire protocol: row too wide to encode");
      put_u16(p, static_cast<std::uint16_t>(slot.values.size()));
      for (double v : slot.values) put_f64(p, v);
    }
  }
  return encode_frame(FrameType::kSampleBatch, p);
}

SampleBatch decode_sample_batch(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  SampleBatch batch;
  batch.first_tick = r.read_u32();
  const std::size_t ticks =
      checked_count(r.read_u16(), kMaxTicksPerBatch, "tick");
  batch.ticks.resize(ticks);
  for (Tick& tick : batch.ticks) {
    const std::size_t tiers = checked_count(r.read_u16(), kMaxTiers, "tier");
    tick.tiers.resize(tiers);
    for (TierSlot& slot : tick.tiers) {
      slot.present = r.read_u8() != 0;
      if (!slot.present) continue;
      const std::size_t dim = checked_count(r.read_u16(), kMaxRowDim, "row");
      // Truncation is caught per-value by the reader; the cap above bounds
      // the resize before any allocation happens.
      slot.values.resize(dim);
      for (double& v : slot.values) v = r.read_f64();
    }
  }
  r.expect_done("SAMPLE_BATCH");
  return batch;
}

// --- DECISION ------------------------------------------------------------

std::vector<std::uint8_t> encode_decision(const DecisionFrame& d) {
  std::vector<std::uint8_t> p;
  put_u32(p, d.window_index);
  put_u8(p, d.state);
  put_u8(p, d.confident);
  put_u8(p, d.degraded);
  put_u8(p, 0);
  put_i32(p, d.hc);
  put_i32(p, d.bottleneck_tier);
  put_i32(p, d.staleness);
  return encode_frame(FrameType::kDecision, p);
}

DecisionFrame decode_decision(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  DecisionFrame d;
  d.window_index = r.read_u32();
  d.state = r.read_u8();
  d.confident = r.read_u8();
  d.degraded = r.read_u8();
  if (r.read_u8() != 0) malformed("DECISION: nonzero reserved byte");
  d.hc = r.read_i32();
  d.bottleneck_tier = r.read_i32();
  d.staleness = r.read_i32();
  r.expect_done("DECISION");
  return d;
}

// --- STATS ---------------------------------------------------------------

std::uint64_t StatsReply::value(const std::string& key) const {
  for (const auto& [k, v] : entries)
    if (k == key) return v;
  return 0;
}

std::vector<std::uint8_t> encode_stats_request() {
  return encode_frame(FrameType::kStats, {});
}

std::vector<std::uint8_t> encode_stats_reply(const StatsReply& rep) {
  if (rep.entries.size() > kMaxStatsEntries)
    throw ProtocolError("wire protocol: too many stats entries to encode");
  std::vector<std::uint8_t> p;
  put_u32(p, static_cast<std::uint32_t>(rep.entries.size()));
  for (const auto& [key, value] : rep.entries) {
    put_string(p, key);
    put_u64(p, value);
  }
  return encode_frame(FrameType::kStats, p);
}

StatsReply decode_stats_reply(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  StatsReply rep;
  const std::size_t n =
      checked_count(r.read_u32(), kMaxStatsEntries, "stats entry");
  rep.entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::string key = r.read_string();
    const std::uint64_t value = r.read_u64();
    rep.entries.emplace_back(std::move(key), value);
  }
  r.expect_done("STATS reply");
  return rep;
}

// --- RELOAD --------------------------------------------------------------

std::vector<std::uint8_t> encode_reload_request(const ReloadRequest& req) {
  std::vector<std::uint8_t> p;
  put_string(p, req.path);
  return encode_frame(FrameType::kReload, p);
}

ReloadRequest decode_reload_request(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  ReloadRequest req;
  req.path = r.read_string();
  r.expect_done("RELOAD request");
  return req;
}

std::vector<std::uint8_t> encode_reload_reply(const ReloadReply& rep) {
  std::vector<std::uint8_t> p;
  put_u8(p, rep.ok ? 1 : 0);
  put_u32(p, rep.model_version);
  put_string(p, rep.message);
  return encode_frame(FrameType::kReload, p);
}

ReloadReply decode_reload_reply(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  ReloadReply rep;
  rep.ok = r.read_u8() != 0;
  rep.model_version = r.read_u32();
  rep.message = r.read_string();
  r.expect_done("RELOAD reply");
  return rep;
}

// --- SHUTDOWN ------------------------------------------------------------

std::vector<std::uint8_t> encode_shutdown() {
  return encode_frame(FrameType::kShutdown, {});
}

// --- FrameAssembler ------------------------------------------------------

void FrameAssembler::append(const std::uint8_t* data, std::size_t n) {
  // Compact once the consumed prefix dominates, so the buffer does not
  // grow without bound on a long-lived connection.
  if (start_ > 4096 && start_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(start_));
    start_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

std::optional<Frame> FrameAssembler::next() {
  const std::span<const std::uint8_t> pending(buf_.data() + start_,
                                              buf_.size() - start_);
  const auto header = peek_header(pending);
  if (!header) return std::nullopt;
  const std::size_t total = kHeaderSize + header->payload_size;
  if (pending.size() < total) return std::nullopt;
  Frame frame;
  frame.type = header->type;
  frame.payload.assign(pending.begin() + kHeaderSize,
                       pending.begin() + static_cast<std::ptrdiff_t>(total));
  start_ += total;
  if (start_ == buf_.size()) {
    buf_.clear();
    start_ = 0;
  }
  return frame;
}

}  // namespace hpcap::net
