#include "net/protocol.h"

#include <array>
#include <bit>
#include <cstring>

namespace hpcap::net {

namespace {

[[noreturn]] void malformed(const std::string& what) {
  throw ProtocolError("wire protocol: " + what);
}

std::size_t checked_count(std::uint64_t n, std::size_t cap,
                          const char* what) {
  if (n > cap)
    malformed(std::string(what) + " count " + std::to_string(n) +
              " exceeds cap " + std::to_string(cap));
  return static_cast<std::size_t>(n);
}

void check_version(std::uint8_t version) {
  if (version < kMinProtocolVersion || version > kProtocolVersion)
    throw ProtocolError("wire protocol: cannot encode for protocol version " +
                        std::to_string(version));
}

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : data) c = kCrcTable[(c ^ b) & 0xffu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

// --- writer --------------------------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_f64_array(std::vector<std::uint8_t>& out,
                   std::span<const double> vals) {
  if (vals.empty()) return;
  const std::size_t at = out.size();
  out.resize(at + vals.size() * 8);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out.data() + at, vals.data(), vals.size() * 8);
  } else {
    std::uint8_t* dst = out.data() + at;
    for (const double v : vals) {
      const auto u = std::bit_cast<std::uint64_t>(v);
      for (int i = 0; i < 8; ++i)
        dst[i] = static_cast<std::uint8_t>((u >> (8 * i)) & 0xff);
      dst += 8;
    }
  }
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  if (s.size() > kMaxString)
    throw ProtocolError("wire protocol: string too long to encode");
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

// --- reader --------------------------------------------------------------

std::uint8_t PayloadReader::read_u8() {
  if (remaining() < 1) malformed("truncated u8");
  return data_[pos_++];
}

std::uint16_t PayloadReader::read_u16() {
  if (remaining() < 2) malformed("truncated u16");
  const std::uint16_t v = static_cast<std::uint16_t>(
      data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

std::uint32_t PayloadReader::read_u32() {
  if (remaining() < 4) malformed("truncated u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t PayloadReader::read_u64() {
  if (remaining() < 8) malformed("truncated u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

std::int32_t PayloadReader::read_i32() {
  return static_cast<std::int32_t>(read_u32());
}

double PayloadReader::read_f64() {
  return std::bit_cast<double>(read_u64());
}

void PayloadReader::skip_f64(std::size_t n) {
  // Same failure as n read_f64 calls: the first value that cannot be
  // fully read reports a truncated u64.
  if (remaining() < n * 8) malformed("truncated u64");
  pos_ += n * 8;
}

void PayloadReader::read_f64_array(double* dst, std::size_t n) {
  if (remaining() < n * 8) malformed("truncated u64");
  if constexpr (std::endian::native == std::endian::little) {
    if (n != 0) std::memcpy(dst, data_.data() + pos_, n * 8);
  } else {
    for (std::size_t v = 0; v < n; ++v) {
      std::uint64_t u = 0;
      for (int i = 0; i < 8; ++i)
        u |= static_cast<std::uint64_t>(data_[pos_ + v * 8 + i]) << (8 * i);
      dst[v] = std::bit_cast<double>(u);
    }
  }
  pos_ += n * 8;
}

std::string PayloadReader::read_string() {
  const std::size_t n = checked_count(read_u32(), kMaxString, "string");
  if (remaining() < n) malformed("truncated string body");
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

void PayloadReader::expect_done(const char* what) const {
  if (remaining() != 0)
    malformed(std::string(what) + ": " + std::to_string(remaining()) +
              " trailing bytes");
}

// --- framing -------------------------------------------------------------

std::optional<FrameHeader> peek_header(
    std::span<const std::uint8_t> buffer) {
  if (buffer.size() < kHeaderSize) return std::nullopt;
  PayloadReader r(buffer.first(kHeaderSize));
  const std::uint32_t magic = r.read_u32();
  if (magic != kMagic) malformed("bad magic");
  FrameHeader h;
  h.version = r.read_u8();
  if (h.version < kMinProtocolVersion || h.version > kProtocolVersion)
    malformed("unsupported protocol version " + std::to_string(h.version));
  const std::uint8_t type = r.read_u8();
  const std::uint8_t max_type = h.version >= 2 ? 8 : 6;
  if (type < 1 || type > max_type)
    malformed("unknown frame type " + std::to_string(type));
  h.type = static_cast<FrameType>(type);
  if (r.read_u16() != 0) malformed("nonzero reserved field");
  h.payload_size = r.read_u32();
  if (h.payload_size > kMaxPayload)
    malformed("payload size " + std::to_string(h.payload_size) +
              " exceeds cap");
  return h;
}

namespace {

// In-place framing for the encode_*_into family: begin_frame appends the
// 12-byte header with a zero payload-size placeholder and returns the
// placeholder's offset; end_frame patches the size once the payload has
// been appended and, for v2, appends the CRC-32 trailer over the whole
// frame. Produces byte-identical frames to encode_frame without a
// separate payload vector.
std::size_t begin_frame(std::vector<std::uint8_t>& out, FrameType type,
                        std::uint8_t version) {
  check_version(version);
  put_u32(out, kMagic);
  put_u8(out, version);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u16(out, 0);
  const std::size_t size_off = out.size();
  put_u32(out, 0);
  return size_off;
}

void end_frame(std::vector<std::uint8_t>& out, std::size_t size_off,
               std::uint8_t version) {
  const std::size_t payload = out.size() - size_off - 4;
  if (payload > kMaxPayload)
    throw ProtocolError("wire protocol: payload too large to encode");
  for (int i = 0; i < 4; ++i)
    out[size_off + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((payload >> (8 * i)) & 0xff);
  if (version >= 2) {
    const std::size_t frame_at = size_off - (kHeaderSize - 4);
    const std::uint32_t c =
        crc32({out.data() + frame_at, out.size() - frame_at});
    put_u32(out, c);
  }
}

}  // namespace

std::vector<std::uint8_t> encode_frame(
    FrameType type, std::span<const std::uint8_t> payload,
    std::uint8_t version) {
  if (payload.size() > kMaxPayload)
    throw ProtocolError("wire protocol: payload too large to encode");
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + payload.size() + kCrcSize);
  const std::size_t f = begin_frame(out, type, version);
  out.insert(out.end(), payload.begin(), payload.end());
  end_frame(out, f, version);
  return out;
}

// --- HELLO ---------------------------------------------------------------

void encode_hello_request_into(const HelloRequest& req,
                               std::vector<std::uint8_t>& out,
                               std::uint8_t version) {
  const std::size_t f = begin_frame(out, FrameType::kHello, version);
  put_string(out, req.agent);
  put_string(out, req.level);
  put_u16(out, req.num_tiers);
  put_u16(out, req.window);
  if (version >= 2) {
    put_u64(out, req.resume_token);
    put_u32(out, req.resume_from_window);
  }
  end_frame(out, f, version);
}

std::vector<std::uint8_t> encode_hello_request(const HelloRequest& req,
                                               std::uint8_t version) {
  std::vector<std::uint8_t> out;
  encode_hello_request_into(req, out, version);
  return out;
}

HelloRequest decode_hello_request(std::span<const std::uint8_t> payload,
                                  std::uint8_t version) {
  PayloadReader r(payload);
  HelloRequest req;
  req.agent = r.read_string();
  req.level = r.read_string();
  req.num_tiers = r.read_u16();
  req.window = r.read_u16();
  if (version >= 2) {
    req.resume_token = r.read_u64();
    req.resume_from_window = r.read_u32();
  }
  r.expect_done("HELLO request");
  return req;
}

void encode_hello_reply_into(const HelloReply& rep,
                             std::vector<std::uint8_t>& out,
                             std::uint8_t version) {
  const std::size_t f = begin_frame(out, FrameType::kHello, version);
  put_u8(out, rep.accepted ? 1 : 0);
  put_string(out, rep.message);
  put_u16(out, rep.num_tiers);
  put_u16(out, rep.window);
  put_u32(out, rep.model_version);
  if (rep.dims.size() > kMaxTiers)
    throw ProtocolError("wire protocol: too many tiers to encode");
  put_u16(out, static_cast<std::uint16_t>(rep.dims.size()));
  for (std::uint16_t d : rep.dims) put_u16(out, d);
  if (version >= 2) {
    put_u64(out, rep.session_token);
    put_u64(out, rep.last_applied_seq);
    put_u8(out, rep.resumed ? 1 : 0);
  }
  end_frame(out, f, version);
}

std::vector<std::uint8_t> encode_hello_reply(const HelloReply& rep,
                                             std::uint8_t version) {
  std::vector<std::uint8_t> out;
  encode_hello_reply_into(rep, out, version);
  return out;
}

HelloReply decode_hello_reply(std::span<const std::uint8_t> payload,
                              std::uint8_t version) {
  PayloadReader r(payload);
  HelloReply rep;
  rep.accepted = r.read_u8() != 0;
  rep.message = r.read_string();
  rep.num_tiers = r.read_u16();
  rep.window = r.read_u16();
  rep.model_version = r.read_u32();
  const std::size_t n = checked_count(r.read_u16(), kMaxTiers, "tier");
  rep.dims.resize(n);
  for (auto& d : rep.dims) d = r.read_u16();
  if (version >= 2) {
    rep.session_token = r.read_u64();
    rep.last_applied_seq = r.read_u64();
    rep.resumed = r.read_u8() != 0;
  }
  r.expect_done("HELLO reply");
  return rep;
}

// --- SAMPLE_BATCH --------------------------------------------------------

// hpcap-lint: hot-path
void encode_sample_batch_into(const SampleBatch& batch,
                              std::vector<std::uint8_t>& out,
                              std::uint8_t version) {
  if (batch.ticks.size() > kMaxTicksPerBatch)
    throw ProtocolError("wire protocol: too many ticks to encode");
  const std::size_t f = begin_frame(out, FrameType::kSampleBatch, version);
  if (version >= 2) put_u64(out, batch.batch_seq);
  put_u32(out, batch.first_tick);
  put_u16(out, static_cast<std::uint16_t>(batch.ticks.size()));
  for (const Tick& tick : batch.ticks) {
    if (tick.tiers.size() > kMaxTiers)
      throw ProtocolError("wire protocol: too many tiers to encode");
    put_u16(out, static_cast<std::uint16_t>(tick.tiers.size()));
    for (const TierSlot& slot : tick.tiers) {
      put_u8(out, slot.present ? 1 : 0);
      if (!slot.present) continue;
      if (slot.values.size() > kMaxRowDim)
        throw ProtocolError("wire protocol: row too wide to encode");
      put_u16(out, static_cast<std::uint16_t>(slot.values.size()));
      put_f64_array(out, slot.values);
    }
  }
  end_frame(out, f, version);
}

std::vector<std::uint8_t> encode_sample_batch(const SampleBatch& batch,
                                              std::uint8_t version) {
  std::vector<std::uint8_t> out;
  encode_sample_batch_into(batch, out, version);
  return out;
}

// hpcap-lint: hot-path
SampleBatchView decode_sample_batch_view(
    std::span<const std::uint8_t> payload, BatchArena& arena,
    std::uint8_t version) {
  // Pass 1 — scan: validate structure and count ticks/slots/values so the
  // arena arrays can be sized exactly once (no growth reallocation, and a
  // hostile count never drives a speculative over-allocation).
  std::size_t total_slots = 0;
  std::size_t total_values = 0;
  std::uint64_t batch_seq = 0;
  std::uint32_t first_tick = 0;
  std::size_t num_ticks = 0;
  {
    PayloadReader scan(payload);
    if (version >= 2) batch_seq = scan.read_u64();
    first_tick = scan.read_u32();
    num_ticks = checked_count(scan.read_u16(), kMaxTicksPerBatch, "tick");
    for (std::size_t t = 0; t < num_ticks; ++t) {
      const std::size_t tiers =
          checked_count(scan.read_u16(), kMaxTiers, "tier");
      total_slots += tiers;
      for (std::size_t i = 0; i < tiers; ++i) {
        if (scan.read_u8() == 0) continue;
        const std::size_t dim =
            checked_count(scan.read_u16(), kMaxRowDim, "row");
        scan.skip_f64(dim);
        total_values += dim;
      }
    }
    scan.expect_done("SAMPLE_BATCH");
  }

  // Pass 2 — fill by index into the exactly-sized arena. resize() only
  // allocates until each array reaches its high-water mark; after that a
  // connection's steady-state decodes are allocation-free.
  arena.ticks_.resize(num_ticks);
  // Both counts are bounded by the scanned payload itself — every slot
  // costs at least one byte and every value eight — so neither can
  // exceed kMaxPayload regardless of what the length fields claim.
  arena.slots_.resize(total_slots);    // hpcap-lint: allow(bounded-decode)
  arena.values_.resize(total_values);  // hpcap-lint: allow(bounded-decode)
  PayloadReader r(payload);
  SampleBatchView batch;
  if (version >= 2) (void)r.read_u64();  // batch_seq, read in pass 1
  batch.first_tick = r.read_u32();
  (void)r.read_u16();  // tick count, validated in pass 1
  std::size_t slot_at = 0;
  std::size_t value_at = 0;
  for (std::size_t t = 0; t < num_ticks; ++t) {
    const std::size_t tiers = r.read_u16();
    TierSlotView* tick_slots = arena.slots_.data() + slot_at;
    for (std::size_t i = 0; i < tiers; ++i) {
      TierSlotView& slot = tick_slots[i];
      slot.present = r.read_u8() != 0;
      if (!slot.present) {
        slot.values = {};
        continue;
      }
      const std::size_t dim = r.read_u16();
      double* vals = arena.values_.data() + value_at;
      r.read_f64_array(vals, dim);
      slot.values = {vals, dim};
      value_at += dim;
    }
    arena.ticks_[t].tiers = {tick_slots, tiers};
    slot_at += tiers;
  }
  batch.ticks = {arena.ticks_.data(), num_ticks};
  batch.batch_seq = batch_seq;
  batch.first_tick = first_tick;
  return batch;
}

SampleBatch decode_sample_batch(std::span<const std::uint8_t> payload,
                                std::uint8_t version) {
  // One validation implementation: decode through a local arena, then
  // deep-copy the views into the owning struct.
  BatchArena arena;
  const SampleBatchView view = decode_sample_batch_view(payload, arena,
                                                        version);
  SampleBatch batch;
  batch.batch_seq = view.batch_seq;
  batch.first_tick = view.first_tick;
  batch.ticks.resize(view.ticks.size());
  for (std::size_t t = 0; t < view.ticks.size(); ++t) {
    const TickView& tv = view.ticks[t];
    batch.ticks[t].tiers.resize(tv.tiers.size());
    for (std::size_t i = 0; i < tv.tiers.size(); ++i) {
      batch.ticks[t].tiers[i].present = tv.tiers[i].present;
      batch.ticks[t].tiers[i].values.assign(tv.tiers[i].values.begin(),
                                            tv.tiers[i].values.end());
    }
  }
  return batch;
}

// --- DECISION ------------------------------------------------------------

// hpcap-lint: hot-path
void encode_decision_into(const DecisionFrame& d,
                          std::vector<std::uint8_t>& out,
                          std::uint8_t version) {
  const std::size_t f = begin_frame(out, FrameType::kDecision, version);
  put_u32(out, d.window_index);
  put_u8(out, d.state);
  put_u8(out, d.confident);
  put_u8(out, d.degraded);
  put_u8(out, 0);
  put_i32(out, d.hc);
  put_i32(out, d.bottleneck_tier);
  put_i32(out, d.staleness);
  end_frame(out, f, version);
}

std::vector<std::uint8_t> encode_decision(const DecisionFrame& d,
                                          std::uint8_t version) {
  std::vector<std::uint8_t> out;
  encode_decision_into(d, out, version);
  return out;
}

DecisionFrame decode_decision(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  DecisionFrame d;
  d.window_index = r.read_u32();
  d.state = r.read_u8();
  d.confident = r.read_u8();
  d.degraded = r.read_u8();
  if (r.read_u8() != 0) malformed("DECISION: nonzero reserved byte");
  d.hc = r.read_i32();
  d.bottleneck_tier = r.read_i32();
  d.staleness = r.read_i32();
  r.expect_done("DECISION");
  return d;
}

// --- ACK (v2 only) -------------------------------------------------------

void encode_ack_into(const AckFrame& ack, std::vector<std::uint8_t>& out,
                     std::uint8_t version) {
  if (version < 2)
    throw ProtocolError("wire protocol: ACK frames require protocol v2");
  const std::size_t f = begin_frame(out, FrameType::kAck, version);
  put_u64(out, ack.last_applied_seq);
  put_u32(out, ack.next_window);
  end_frame(out, f, version);
}

std::vector<std::uint8_t> encode_ack(const AckFrame& ack,
                                     std::uint8_t version) {
  std::vector<std::uint8_t> out;
  encode_ack_into(ack, out, version);
  return out;
}

AckFrame decode_ack(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  AckFrame ack;
  ack.last_applied_seq = r.read_u64();
  ack.next_window = r.read_u32();
  r.expect_done("ACK");
  return ack;
}

// --- STATS ---------------------------------------------------------------

std::uint64_t StatsReply::value(const std::string& key) const {
  for (const auto& [k, v] : entries)
    if (k == key) return v;
  return 0;
}

void encode_stats_request_into(std::vector<std::uint8_t>& out,
                               std::uint8_t version) {
  end_frame(out, begin_frame(out, FrameType::kStats, version), version);
}

std::vector<std::uint8_t> encode_stats_request(std::uint8_t version) {
  return encode_frame(FrameType::kStats, {}, version);
}

void encode_stats_reply_into(const StatsReply& rep,
                             std::vector<std::uint8_t>& out,
                             std::uint8_t version) {
  if (rep.entries.size() > kMaxStatsEntries)
    throw ProtocolError("wire protocol: too many stats entries to encode");
  const std::size_t f = begin_frame(out, FrameType::kStats, version);
  put_u32(out, static_cast<std::uint32_t>(rep.entries.size()));
  for (const auto& [key, value] : rep.entries) {
    put_string(out, key);
    put_u64(out, value);
  }
  end_frame(out, f, version);
}

std::vector<std::uint8_t> encode_stats_reply(const StatsReply& rep,
                                             std::uint8_t version) {
  std::vector<std::uint8_t> out;
  encode_stats_reply_into(rep, out, version);
  return out;
}

StatsReply decode_stats_reply(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  StatsReply rep;
  const std::size_t n =
      checked_count(r.read_u32(), kMaxStatsEntries, "stats entry");
  rep.entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::string key = r.read_string();
    const std::uint64_t value = r.read_u64();
    rep.entries.emplace_back(std::move(key), value);
  }
  r.expect_done("STATS reply");
  return rep;
}

// --- RELOAD --------------------------------------------------------------

void encode_reload_request_into(const ReloadRequest& req,
                                std::vector<std::uint8_t>& out,
                                std::uint8_t version) {
  const std::size_t f = begin_frame(out, FrameType::kReload, version);
  put_string(out, req.path);
  end_frame(out, f, version);
}

std::vector<std::uint8_t> encode_reload_request(const ReloadRequest& req,
                                                std::uint8_t version) {
  std::vector<std::uint8_t> out;
  encode_reload_request_into(req, out, version);
  return out;
}

ReloadRequest decode_reload_request(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  ReloadRequest req;
  req.path = r.read_string();
  r.expect_done("RELOAD request");
  return req;
}

void encode_reload_reply_into(const ReloadReply& rep,
                              std::vector<std::uint8_t>& out,
                              std::uint8_t version) {
  const std::size_t f = begin_frame(out, FrameType::kReload, version);
  put_u8(out, rep.ok ? 1 : 0);
  put_u32(out, rep.model_version);
  put_string(out, rep.message);
  end_frame(out, f, version);
}

std::vector<std::uint8_t> encode_reload_reply(const ReloadReply& rep,
                                              std::uint8_t version) {
  std::vector<std::uint8_t> out;
  encode_reload_reply_into(rep, out, version);
  return out;
}

ReloadReply decode_reload_reply(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  ReloadReply rep;
  rep.ok = r.read_u8() != 0;
  rep.model_version = r.read_u32();
  rep.message = r.read_string();
  r.expect_done("RELOAD reply");
  return rep;
}

// --- SHUTDOWN ------------------------------------------------------------

std::vector<std::uint8_t> encode_shutdown(std::uint8_t version) {
  return encode_frame(FrameType::kShutdown, {}, version);
}

void encode_shutdown_into(std::vector<std::uint8_t>& out,
                          std::uint8_t version) {
  end_frame(out, begin_frame(out, FrameType::kShutdown, version), version);
}

// --- AGGREGATE -----------------------------------------------------------

namespace {

// All AGGREGATE encoders are v2-only: the frame type does not exist in
// the v1 range, so asking for a v1 encoding is a caller bug, not a
// negotiation outcome.
void check_aggregate_version(std::uint8_t version) {
  check_version(version);
  if (version < 2)
    throw ProtocolError("AGGREGATE frames require protocol v2");
}

}  // namespace

AggregateKind peek_aggregate_kind(std::span<const std::uint8_t> payload) {
  if (payload.empty()) malformed("AGGREGATE: empty payload");
  const std::uint8_t kind = payload[0];
  if (kind < 1 || kind > 3)
    malformed("AGGREGATE: unknown kind " + std::to_string(kind));
  return static_cast<AggregateKind>(kind);
}

void encode_aggregate_subscribe_into(const AggregateSubscribe& req,
                                     std::vector<std::uint8_t>& out,
                                     std::uint8_t version) {
  check_aggregate_version(version);
  if (req.synopses.size() > kMaxAggSynopses)
    throw ProtocolError("AGGREGATE: too many synopses to encode");
  const std::size_t f = begin_frame(out, FrameType::kAggregate, version);
  put_u8(out, static_cast<std::uint8_t>(AggregateKind::kSubscribe));
  put_string(out, req.leaf);
  put_u16(out, static_cast<std::uint16_t>(req.synopses.size()));
  for (const std::uint16_t s : req.synopses) put_u16(out, s);
  put_u64(out, req.resume_token);
  put_u32(out, req.resume_from_window);
  end_frame(out, f, version);
}

std::vector<std::uint8_t> encode_aggregate_subscribe(
    const AggregateSubscribe& req, std::uint8_t version) {
  std::vector<std::uint8_t> out;
  encode_aggregate_subscribe_into(req, out, version);
  return out;
}

AggregateSubscribe decode_aggregate_subscribe(
    std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  if (r.read_u8() != static_cast<std::uint8_t>(AggregateKind::kSubscribe))
    malformed("AGGREGATE: not a SUBSCRIBE payload");
  AggregateSubscribe req;
  req.leaf = r.read_string();
  const std::size_t n = checked_count(
      r.read_u16(), kMaxAggSynopses, "aggregate synopsis");
  req.synopses.resize(n);
  for (std::size_t i = 0; i < n; ++i) req.synopses[i] = r.read_u16();
  req.resume_token = r.read_u64();
  req.resume_from_window = r.read_u32();
  r.expect_done("AGGREGATE SUBSCRIBE");
  return req;
}

void encode_aggregate_subscribe_reply_into(const AggregateSubscribeReply& rep,
                                           std::vector<std::uint8_t>& out,
                                           std::uint8_t version) {
  check_aggregate_version(version);
  const std::size_t f = begin_frame(out, FrameType::kAggregate, version);
  put_u8(out, static_cast<std::uint8_t>(AggregateKind::kSubscribeReply));
  put_u8(out, rep.accepted ? 1 : 0);
  put_string(out, rep.message);
  put_u32(out, rep.model_version);
  put_u16(out, rep.num_synopses);
  put_u64(out, rep.session_token);
  put_u64(out, rep.last_applied_seq);
  put_u8(out, rep.resumed ? 1 : 0);
  end_frame(out, f, version);
}

std::vector<std::uint8_t> encode_aggregate_subscribe_reply(
    const AggregateSubscribeReply& rep, std::uint8_t version) {
  std::vector<std::uint8_t> out;
  encode_aggregate_subscribe_reply_into(rep, out, version);
  return out;
}

AggregateSubscribeReply decode_aggregate_subscribe_reply(
    std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  if (r.read_u8() !=
      static_cast<std::uint8_t>(AggregateKind::kSubscribeReply))
    malformed("AGGREGATE: not a SUBSCRIBE_REPLY payload");
  AggregateSubscribeReply rep;
  rep.accepted = r.read_u8() != 0;
  rep.message = r.read_string();
  rep.model_version = r.read_u32();
  rep.num_synopses = r.read_u16();
  rep.session_token = r.read_u64();
  rep.last_applied_seq = r.read_u64();
  rep.resumed = r.read_u8() != 0;
  r.expect_done("AGGREGATE SUBSCRIBE_REPLY");
  return rep;
}

void encode_aggregate_batch_into(const AggregateBatch& batch,
                                 std::vector<std::uint8_t>& out,
                                 std::uint8_t version) {
  check_aggregate_version(version);
  if (batch.windows.size() > kMaxAggWindows)
    throw ProtocolError("AGGREGATE: too many windows to encode");
  const std::size_t f = begin_frame(out, FrameType::kAggregate, version);
  put_u8(out, static_cast<std::uint8_t>(AggregateKind::kVotes));
  put_u64(out, batch.agg_seq);
  put_u16(out, static_cast<std::uint16_t>(batch.windows.size()));
  for (const AggregateWindow& w : batch.windows) {
    if (w.votes.size() != w.valid.size() ||
        w.votes.size() > kMaxAggSynopses)
      throw ProtocolError("AGGREGATE: malformed window to encode");
    put_u32(out, w.window_index);
    put_u16(out, static_cast<std::uint16_t>(w.votes.size()));
    for (std::size_t i = 0; i < w.votes.size(); ++i) {
      // One cell byte per synopsis: 0 abstain, 1/2 a valid vote 0/1.
      std::uint8_t cell = 0;
      if (w.valid[i]) {
        if (w.votes[i] != 0 && w.votes[i] != 1)
          throw ProtocolError("AGGREGATE: vote outside the binary domain");
        cell = static_cast<std::uint8_t>(1 + w.votes[i]);
      }
      put_u8(out, cell);
    }
  }
  end_frame(out, f, version);
}

std::vector<std::uint8_t> encode_aggregate_batch(const AggregateBatch& batch,
                                                 std::uint8_t version) {
  std::vector<std::uint8_t> out;
  encode_aggregate_batch_into(batch, out, version);
  return out;
}

AggregateBatch decode_aggregate_batch(
    std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  if (r.read_u8() != static_cast<std::uint8_t>(AggregateKind::kVotes))
    malformed("AGGREGATE: not a VOTES payload");
  AggregateBatch batch;
  batch.agg_seq = r.read_u64();
  const std::size_t count = checked_count(
      r.read_u16(), kMaxAggWindows, "aggregate window");
  batch.windows.resize(count);
  for (AggregateWindow& w : batch.windows) {
    w.window_index = r.read_u32();
    const std::size_t n = checked_count(
        r.read_u16(), kMaxAggSynopses, "aggregate synopsis");
    w.votes.resize(n);
    w.valid.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t cell = r.read_u8();
      if (cell > 2) malformed("AGGREGATE VOTES: cell outside 0..2");
      w.valid[i] = cell != 0;
      w.votes[i] = cell == 0 ? 0 : cell - 1;
    }
  }
  r.expect_done("AGGREGATE VOTES");
  return batch;
}

// --- FrameAssembler ------------------------------------------------------

// hpcap-lint: hot-path
void FrameAssembler::append(const std::uint8_t* data, std::size_t n) {
  // All bookkeeping that moves or drops bytes happens here, never in
  // next_ref(): spans handed out since the last append stay valid until
  // this call.
  if (start_ == buf_.size()) {
    // Everything consumed: restart at the front (capacity retained).
    buf_.clear();
    start_ = 0;
  } else if (start_ > 4096 && start_ > buf_.size() / 2) {
    // Compact once the consumed prefix dominates, so the buffer does not
    // grow without bound on a long-lived connection.
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(start_));
    start_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

// hpcap-lint: hot-path
std::optional<FrameRef> FrameAssembler::next_ref() {
  const std::span<const std::uint8_t> pending(buf_.data() + start_,
                                              buf_.size() - start_);
  const auto header = peek_header(pending);
  if (!header) return std::nullopt;
  const std::size_t trailer = header->version >= 2 ? kCrcSize : 0;
  const std::size_t total = kHeaderSize + header->payload_size + trailer;
  if (pending.size() < total) return std::nullopt;
  if (trailer != 0) {
    const std::size_t body = kHeaderSize + header->payload_size;
    const std::uint32_t want = crc32(pending.first(body));
    std::uint32_t got = 0;
    for (int i = 0; i < 4; ++i)
      got |= static_cast<std::uint32_t>(pending[body +
                                                static_cast<std::size_t>(i)])
             << (8 * i);
    if (want != got) malformed("frame checksum mismatch");
  }
  FrameRef frame;
  frame.version = header->version;
  frame.type = header->type;
  frame.payload = pending.subspan(kHeaderSize, header->payload_size);
  start_ += total;
  return frame;
}

std::optional<Frame> FrameAssembler::next() {
  const auto ref = next_ref();
  if (!ref) return std::nullopt;
  Frame frame;
  frame.version = ref->version;
  frame.type = ref->type;
  frame.payload.assign(ref->payload.begin(), ref->payload.end());
  return frame;
}

}  // namespace hpcap::net
