#include "counters/os_model.h"

#include <algorithm>
#include <cmath>

namespace hpcap::counters {

OsModel::OsModel(sim::Tier::Config tier, Params params, std::uint64_t seed)
    : tier_(std::move(tier)), params_(params), rng_(seed) {}

double OsModel::noisy(double v, double floor) {
  double out = v == 0.0 ? 0.0
                        : v * rng_.lognormal_mean_cv(1.0, params_.noise_cv);
  if (floor > 0.0) out += rng_.normal(0.0, floor);
  return out;
}

std::vector<double> OsModel::synthesize(const sim::Tier::IntervalStats& s,
                                        const OsGauges& g) {
  std::vector<double> m(os_catalog().size(), 0.0);
  const double dur = std::max(s.duration, 1e-9);
  const double cores = static_cast<double>(tier_.cores);

  // --- CPU accounting. Crucial asymmetry vs. the hardware counters: time
  // a thread spends blocked on buffer-pool I/O or latches (D state) is
  // *not* CPU-busy to the OS — it shows up as iowait/idle. A database
  // drowning in heavy scans therefore reads "~60% user, lots of iowait",
  // nearly indistinguishable from the same box healthy-but-busy, which is
  // exactly the paper's "excessive load vs excessive work" blindness. The
  // CPU-bound application tier has essentially no D-state time, so its
  // OS CPU metrics stay fully informative.
  const double util = std::min(1.0, s.utilization(tier_.cores));
  const double pool = std::max(1.0, static_cast<double>(tier_.thread_pool));
  const double io_shift = 0.5 * g.blocked_fraction;
  const double os_busy = util * (1.0 - io_shift);
  // Kernel-time share follows scheduler churn among *runnable* tasks.
  const double runnable_raw =
      static_cast<double>(g.runnable_now) *
      std::clamp(1.0 - g.blocked_fraction, 0.05, 1.0);
  const double sched_load = std::min(1.0, runnable_raw / (4.0 * cores));
  const double sys_share = 0.12 + 0.22 * sched_load;
  const double fp = s.mean_footprint_mb();
  const double iowait = util * io_shift +
                        std::min(0.05, 0.004 + 0.012 * fp / (fp + 300.0)) *
                            (util > 0.02 ? 1.0 : 0.0);
  const double user = os_busy * (1.0 - sys_share);
  const double sys = os_busy * sys_share;
  m[kOsCpuUser] = std::clamp(noisy(user * 100.0, 1.0), 0.0, 100.0);
  m[kOsCpuSystem] = std::clamp(noisy(sys * 100.0, 0.8), 0.0, 100.0);
  m[kOsCpuIoWait] = std::clamp(noisy(iowait * 100.0, 1.2), 0.0, 100.0);
  // sar normalizes the jiffy buckets: the four fields always sum to 100.
  const double busy_sum =
      m[kOsCpuUser] + m[kOsCpuSystem] + m[kOsCpuIoWait];
  if (busy_sum > 100.0) {
    const double scale = 100.0 / busy_sum;
    m[kOsCpuUser] *= scale;
    m[kOsCpuSystem] *= scale;
    m[kOsCpuIoWait] *= scale;
  }
  m[kOsCpuIdle] = std::clamp(100.0 - m[kOsCpuUser] - m[kOsCpuSystem] -
                                 m[kOsCpuIoWait],
                             0.0, 100.0);

  // --- Scheduler gauges. runq is the instantaneous count of *runnable*
  // tasks: jobs blocked on the memory system or storage latches sit in D
  // state and vanish from it (which is what blinds scheduler metrics to
  // heavy-query overload). Load averages decay the sampled value
  // kernel-style.
  const double runq = std::max(0.0, noisy(runnable_raw, 1.4));
  m[kOsRunQueue] = runq;
  // Worker threads / DB connections are pre-spawned pools: the process
  // list reflects the pool size, not the number of in-flight requests.
  const double pool_procs =
      params_.base_processes + static_cast<double>(tier_.thread_pool);
  m[kOsProcessList] = noisy(pool_procs);
  auto decay = [dur](double avg, double sample, double tau) {
    const double a = std::exp(-dur / tau);
    return avg * a + sample * (1.0 - a);
  };
  ldavg1_ = decay(ldavg1_, runq + os_busy * cores, 60.0);
  ldavg5_ = decay(ldavg5_, runq + os_busy * cores, 300.0);
  ldavg15_ = decay(ldavg15_, runq + os_busy * cores, 900.0);
  m[kOsLoadAvg1] = ldavg1_;
  m[kOsLoadAvg5] = ldavg5_;
  m[kOsLoadAvg15] = ldavg15_;

  // Context switches: timeslice rotation of runnable tasks (bounded by the
  // scheduler frequency) plus wakeups per grant/completion.
  const double cswch =
      120.0 +
      std::min(s.mean_active(), cores) * 250.0 +
      runnable_raw * 8.0 +
      static_cast<double>(s.thread_grants + s.completions) / dur * 4.0;
  m[9] = noisy(cswch);                                      // cswch_per_s
  m[10] = noisy(950.0 + cswch * 0.6);                       // intr_per_s
  m[11] = noisy(0.3);                                       // proc_per_s

  // --- Memory. Threads cost stacks; the big consumers (JVM heap, MySQL
  // buffer pool) are *preallocated*, so resident memory barely reflects
  // the query working set — another reason OS metrics miss heavy-query
  // overload. Values in KB like sar.
  const double mem_used_mb =
      params_.base_mem_mb + params_.ram_mb * 0.35 +
      static_cast<double>(tier_.thread_pool) * params_.thread_stack_mb;
  const double mem_used = std::min(mem_used_mb, params_.ram_mb * 0.98);
  m[12] = noisy((params_.ram_mb - mem_used) * 1024.0);      // kbmemfree
  m[13] = noisy(mem_used * 1024.0);                         // kbmemused
  m[14] = std::clamp(mem_used / params_.ram_mb * 100.0, 0.0, 100.0);
  m[15] = noisy(24.0 * 1024.0);                             // kbbuffers
  m[16] = noisy(params_.ram_mb * 0.3 * 1024.0);             // kbcached
  m[17] = noisy(mem_used * 1.35 * 1024.0);                  // kbcommit
  m[18] = std::clamp(mem_used * 1.35 / params_.ram_mb * 100.0, 0.0, 200.0);
  m[19] = noisy(mem_used * 0.7 * 1024.0);                   // kbactive
  m[20] = noisy(mem_used * 0.2 * 1024.0);                   // kbinact

  // Swap: quiescent unless memory is nearly exhausted.
  const double mem_pressure =
      std::max(0.0, mem_used_mb / params_.ram_mb - 0.95);
  const double swp_used = mem_pressure * 256.0;  // MB
  m[21] = noisy((512.0 - swp_used) * 1024.0);               // kbswpfree
  m[22] = noisy(swp_used * 1024.0);                         // kbswpused
  m[23] = std::clamp(swp_used / 512.0 * 100.0, 0.0, 100.0);
  m[24] = noisy(swp_used * 0.3 * 1024.0);                   // kbswpcad

  // Paging: minor faults follow thread churn and allocation rate.
  const double jobs_per_s =
      static_cast<double>(s.job_starts) / dur;
  m[25] = noisy(mem_pressure * 4000.0 + 8.0);               // pgpgin
  m[26] = noisy(40.0 + jobs_per_s * 6.0);                   // pgpgout
  m[27] = noisy(200.0 + jobs_per_s * 90.0);                 // fault
  m[28] = noisy(mem_pressure * 50.0);                       // majflt
  m[29] = noisy(300.0 + jobs_per_s * 70.0);                 // pgfree
  m[30] = noisy(mem_pressure * 900.0);                      // pgscank
  m[31] = noisy(mem_pressure * 200.0);                      // pgscand
  m[32] = noisy(mem_pressure * 800.0);                      // pgsteal

  // Block I/O: light logging plus paging traffic.
  const double completions_per_s =
      static_cast<double>(s.completions) / dur;
  m[33] = noisy(2.0 + completions_per_s * 0.15 + mem_pressure * 40.0);
  m[34] = noisy(0.5 + mem_pressure * 35.0);                 // rtps
  m[35] = noisy(1.5 + completions_per_s * 0.15);            // wtps
  m[36] = noisy(8.0 + mem_pressure * 1200.0);               // bread
  m[37] = noisy(24.0 + completions_per_s * 2.5);            // bwrtn

  // Network: requests in, pages out. Browse responses are heavier.
  const double rx = completions_per_s * params_.rx_pkts_per_job + 20.0;
  const double tx =
      static_cast<double>(s.completions_by_class[0]) / dur *
          params_.tx_pkts_per_browse +
      static_cast<double>(s.completions_by_class[1]) / dur *
          params_.tx_pkts_per_order +
      20.0;
  m[38] = noisy(rx);                                        // rxpck
  m[39] = noisy(tx);                                        // txpck
  m[40] = noisy(rx * 0.6);                                  // rxkb
  m[41] = noisy(tx * 4.2);                                  // txkb
  m[42] = 0.0;
  m[43] = 0.0;
  m[44] = noisy(std::max(0.0, runq - pool * 0.9) * 0.2);    // rxdrop
  m[45] = 0.0;

  // Sockets: one per active connection plus TIME_WAIT churn.
  tcp_tw_ = tcp_tw_ * std::exp(-dur / 15.0) +
            static_cast<double>(s.completions) * 0.8;
  m[46] = noisy(120.0 + pool_procs * 1.1);  // pooled conns stay open
  m[47] = noisy(30.0 + static_cast<double>(tier_.thread_pool));
  m[48] = noisy(6.0);                                       // udpsck
  m[49] = noisy(tcp_tw_);                                   // tcp_tw
  m[50] = noisy(completions_per_s * 0.8);                   // active/s
  m[51] = noisy(completions_per_s * 0.9);                   // passive/s
  m[52] = noisy(rx * 1.1);                                  // iseg/s
  m[53] = noisy(tx * 1.1);                                  // oseg/s

  // File handles and misc.
  m[54] = noisy(1500.0 + pool_procs * 3.0);
  m[55] = noisy(21000.0);
  m[56] = noisy(8200.0);
  m[57] = 2.0;
  m[58] = m[33];                                            // sda tps
  m[59] = noisy(3.0 + mem_pressure * 60.0 + iowait * 300.0, 2.5);
  m[60] = std::clamp(noisy(m[33] * 0.8), 0.0, 100.0);       // sda util
  m[61] = 0.0;                                              // steal
  m[62] = 0.0;                                              // nice
  m[63] = noisy(0.8 + cswch * 5e-4);                        // irq pct

  return m;
}

}  // namespace hpcap::counters
