// Metric catalogs: the named dimensions of the two monitoring levels the
// paper compares.
//
//  * The HPC catalog mirrors the event set readable through the PerfCtr
//    kernel patch on Intel NetBurst parts — retired instructions, non-halted
//    cycles, L2 references/misses, resource stalls, branches and
//    mispredictions, front-side-bus transactions, TLB misses — plus the
//    conventional derived rates (IPC, miss rates).
//  * The OS catalog mirrors the 64 Sysstat (sar) fields the paper collects:
//    CPU percentages, run queue and process list, load averages, context
//    switches, memory/swap/paging, block I/O, and network activity.
//
// A metric *sample* is a plain vector<double> laid out per the catalog.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hpcap::counters {

class MetricCatalog {
 public:
  explicit MetricCatalog(std::string level, std::vector<std::string> names);

  const std::string& level() const noexcept { return level_; }
  std::size_t size() const noexcept { return names_.size(); }
  const std::vector<std::string>& names() const noexcept { return names_; }
  const std::string& name(std::size_t i) const { return names_.at(i); }
  // Returns the index of `name`, or npos if absent.
  std::size_t index_of(const std::string& name) const noexcept;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  std::string level_;
  std::vector<std::string> names_;
};

// Well-known HPC metric indices (stable: the catalog is append-only).
enum HpcMetric : std::size_t {
  kHpcInstrRetired = 0,
  kHpcCyclesBusy,
  kHpcCyclesHalted,
  kHpcIpc,
  kHpcL2References,
  kHpcL2Misses,
  kHpcL2MissRate,
  kHpcL2MissPerKInstr,
  kHpcStallCycles,
  kHpcStallFraction,
  kHpcBranches,
  kHpcBranchMispredictions,
  kHpcBranchMispredRate,
  kHpcBusTransactions,
  kHpcDtlbMisses,
  kHpcItlbMisses,
  kHpcMemLoads,
  kHpcMemStores,
  kHpcUopsPerCycle,
  kHpcPrefetches,
  kHpcMetricCount,
};

const MetricCatalog& hpc_catalog();
const MetricCatalog& os_catalog();

// Indices of frequently used OS metrics.
enum OsMetric : std::size_t {
  kOsCpuUser = 0,
  kOsCpuSystem,
  kOsCpuIoWait,
  kOsCpuIdle,
  kOsRunQueue,
  kOsProcessList,
  kOsLoadAvg1,
  kOsLoadAvg5,
  kOsLoadAvg15,
  kOsContextSwitches,
  // ... the remaining sysstat fields; see os_catalog() for the full list.
};

}  // namespace hpcap::counters
