// Synthetic OS-level (Sysstat) metric model.
//
// Mirrors the 64 sar fields the paper collects as its comparison baseline.
// The fields are derived from the same simulator ground truth as the HPC
// model, but through the lossy lens the OS actually has:
//
//   * CPU percentages clip at 100% — a tier that is saturated-but-healthy
//     and one that is thrashing both read "~100% busy";
//   * the run queue is an instantaneous, bursty gauge, bounded at the
//     database by the connection pool;
//   * context switches and load averages respond to *thread counts*, so
//     they see "too many requests" (ordering overload) but not "too much
//     work per request" (browsing overload);
//   * memory/paging/network fields move slowly or track throughput, which
//     stagnates rather than collapses right at the capacity boundary.
//
// This is what makes the paper's Table I/Fig. 4 comparison meaningful: the
// OS vector genuinely contains less usable state information, it is not
// merely noisier.
#pragma once

#include <vector>

#include "counters/metric_catalog.h"
#include "sim/tier.h"
#include "util/rng.h"
#include "util/stats.h"

namespace hpcap::counters {

// Instantaneous gauges captured at the sampling tick (sar reads /proc at
// the instant of the sample, not interval averages).
struct OsGauges {
  int runnable_now = 0;
  int threads_now = 0;
  int queue_now = 0;
  // Fraction of active jobs blocked on the memory system / storage
  // latches (D state on Linux): they leave the run queue, which is why
  // heavy-query overload is nearly invisible to scheduler-level metrics.
  double blocked_fraction = 0.0;
};

class OsModel {
 public:
  struct Params {
    double ram_mb = 512.0;
    double base_processes = 88.0;
    double base_mem_mb = 180.0;
    double thread_stack_mb = 1.6;
    // Network shape: packets per completed job (request or query).
    double rx_pkts_per_job = 8.0;
    double tx_pkts_per_browse = 30.0;
    double tx_pkts_per_order = 14.0;
    double noise_cv = 0.05;
  };

  OsModel(sim::Tier::Config tier, Params params, std::uint64_t seed);

  // Synthesizes one sample (layout per os_catalog()).
  std::vector<double> synthesize(const sim::Tier::IntervalStats& s,
                                 const OsGauges& g);

 private:
  // Multiplicative log-normal noise, plus an absolute jitter floor:
  // sar's 1 Hz snapshots of percentages, queue depths and latencies are
  // quantized and bursty, so small absolute differences are unresolvable
  // no matter how small the relative noise.
  double noisy(double v, double floor = 0.0);

  sim::Tier::Config tier_;
  Params params_;
  Rng rng_;
  // Kernel-style load averages: exponential decay with 1/5/15-minute time
  // constants, updated from the sampled runnable count each interval.
  double ldavg1_ = 0.0;
  double ldavg5_ = 0.0;
  double ldavg15_ = 0.0;
  double tcp_tw_ = 0.0;  // lingering TIME_WAIT sockets
};

}  // namespace hpcap::counters
