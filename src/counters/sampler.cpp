#include "counters/sampler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hpcap::counters {

InstanceAggregator::InstanceAggregator(std::size_t dim,
                                       int samples_per_instance,
                                       double max_missing_fraction,
                                       int trimmed_samples)
    : dim_(dim),
      window_(samples_per_instance),
      trim_(trimmed_samples) {
  if (samples_per_instance <= 0)
    throw std::invalid_argument("InstanceAggregator: window must be > 0");
  if (max_missing_fraction < 0.0 || max_missing_fraction >= 1.0)
    throw std::invalid_argument(
        "InstanceAggregator: max_missing_fraction must be in [0, 1)");
  if (trimmed_samples < 0 || 2 * trimmed_samples >= samples_per_instance)
    throw std::invalid_argument(
        "InstanceAggregator: trimmed_samples must leave a non-empty core");
  max_missing_ = static_cast<int>(max_missing_fraction *
                                  static_cast<double>(window_));
  buffer_.assign(static_cast<std::size_t>(window_) * dim_, 0.0);
  instance_.assign(dim_, 0.0);
  column_.reserve(static_cast<std::size_t>(window_));
}

// hpcap-lint: hot-path
InstanceAggregator::SlotView InstanceAggregator::add_slot_view(
    std::span<const double> sample) {
  if (sample.size() != dim_)
    throw std::invalid_argument("InstanceAggregator: dimension mismatch");
  const bool finite =
      std::all_of(sample.begin(), sample.end(),
                  [](double v) { return std::isfinite(v); });
  if (!finite) return mark_missing_view();
  ++slots_;
  std::copy(sample.begin(), sample.end(),
            buffer_.begin() + static_cast<std::size_t>(rows_) * dim_);
  ++rows_;
  return close_if_full();
}

InstanceAggregator::SlotView InstanceAggregator::mark_missing_view() {
  ++slots_;
  ++missing_;
  return close_if_full();
}

// hpcap-lint: hot-path
InstanceAggregator::SlotView InstanceAggregator::close_if_full() {
  SlotView r;
  if (slots_ < window_) return r;
  r.window_closed = true;
  r.missing = missing_;
  const int present = rows_;
  // Too many gaps (or too few survivors to trim): the window is not a
  // faithful 30 s average — discard it rather than averaging short.
  if (missing_ > max_missing_ || present <= 2 * trim_) {
    ++windows_discarded_;
    reset();
    return r;
  }
  r.valid = true;
  std::fill(instance_.begin(), instance_.end(), 0.0);
  if (trim_ == 0) {
    // Row-major accumulation in arrival order — the same FP addition
    // sequence as the legacy vector-of-rows loop, so means stay
    // bit-identical across the storage change.
    for (int s = 0; s < present; ++s) {
      const double* row = buffer_.data() + static_cast<std::size_t>(s) * dim_;
      for (std::size_t i = 0; i < dim_; ++i) instance_[i] += row[i];
    }
    for (std::size_t i = 0; i < dim_; ++i)
      instance_[i] /= static_cast<double>(present);
  } else {
    column_.resize(static_cast<std::size_t>(present));
    for (std::size_t i = 0; i < dim_; ++i) {
      for (int s = 0; s < present; ++s)
        column_[static_cast<std::size_t>(s)] =
            buffer_[static_cast<std::size_t>(s) * dim_ + i];
      std::sort(column_.begin(), column_.end());
      double sum = 0.0;
      for (int s = trim_; s < present - trim_; ++s)
        sum += column_[static_cast<std::size_t>(s)];
      instance_[i] = sum / static_cast<double>(present - 2 * trim_);
    }
  }
  r.instance = instance_;
  reset();
  return r;
}

InstanceAggregator::SlotResult InstanceAggregator::to_result(
    const SlotView& v) {
  SlotResult r;
  r.window_closed = v.window_closed;
  r.valid = v.valid;
  r.missing = v.missing;
  if (v.window_closed && v.valid)
    r.instance.emplace(v.instance.begin(), v.instance.end());
  return r;
}

InstanceAggregator::SlotResult InstanceAggregator::add_slot(
    const std::vector<double>& sample) {
  return to_result(add_slot_view(sample));
}

InstanceAggregator::SlotResult InstanceAggregator::mark_missing() {
  return to_result(mark_missing_view());
}

std::optional<std::vector<double>> InstanceAggregator::add(
    const std::vector<double>& sample) {
  auto r = add_slot(sample);
  if (r.window_closed && r.valid) return std::move(r.instance);
  return std::nullopt;
}

void InstanceAggregator::reset() {
  slots_ = 0;
  missing_ = 0;
  rows_ = 0;
}

}  // namespace hpcap::counters
