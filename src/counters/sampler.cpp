#include "counters/sampler.h"

#include <stdexcept>

namespace hpcap::counters {

InstanceAggregator::InstanceAggregator(std::size_t dim,
                                       int samples_per_instance)
    : dim_(dim), window_(samples_per_instance), sum_(dim, 0.0) {
  if (samples_per_instance <= 0)
    throw std::invalid_argument("InstanceAggregator: window must be > 0");
}

std::optional<std::vector<double>> InstanceAggregator::add(
    const std::vector<double>& sample) {
  if (sample.size() != dim_)
    throw std::invalid_argument("InstanceAggregator: dimension mismatch");
  for (std::size_t i = 0; i < dim_; ++i) sum_[i] += sample[i];
  if (++count_ < window_) return std::nullopt;
  std::vector<double> instance(dim_);
  for (std::size_t i = 0; i < dim_; ++i)
    instance[i] = sum_[i] / static_cast<double>(window_);
  reset();
  return instance;
}

void InstanceAggregator::reset() {
  count_ = 0;
  sum_.assign(dim_, 0.0);
}

}  // namespace hpcap::counters
