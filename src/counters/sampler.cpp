#include "counters/sampler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hpcap::counters {

InstanceAggregator::InstanceAggregator(std::size_t dim,
                                       int samples_per_instance,
                                       double max_missing_fraction,
                                       int trimmed_samples)
    : dim_(dim),
      window_(samples_per_instance),
      trim_(trimmed_samples) {
  if (samples_per_instance <= 0)
    throw std::invalid_argument("InstanceAggregator: window must be > 0");
  if (max_missing_fraction < 0.0 || max_missing_fraction >= 1.0)
    throw std::invalid_argument(
        "InstanceAggregator: max_missing_fraction must be in [0, 1)");
  if (trimmed_samples < 0 || 2 * trimmed_samples >= samples_per_instance)
    throw std::invalid_argument(
        "InstanceAggregator: trimmed_samples must leave a non-empty core");
  max_missing_ = static_cast<int>(max_missing_fraction *
                                  static_cast<double>(window_));
  buffer_.reserve(static_cast<std::size_t>(window_));
}

InstanceAggregator::SlotResult InstanceAggregator::add_slot(
    const std::vector<double>& sample) {
  if (sample.size() != dim_)
    throw std::invalid_argument("InstanceAggregator: dimension mismatch");
  const bool finite =
      std::all_of(sample.begin(), sample.end(),
                  [](double v) { return std::isfinite(v); });
  if (!finite) return mark_missing();
  ++slots_;
  buffer_.push_back(sample);
  return close_if_full();
}

InstanceAggregator::SlotResult InstanceAggregator::mark_missing() {
  ++slots_;
  ++missing_;
  return close_if_full();
}

InstanceAggregator::SlotResult InstanceAggregator::close_if_full() {
  SlotResult r;
  if (slots_ < window_) return r;
  r.window_closed = true;
  r.missing = missing_;
  const int present = static_cast<int>(buffer_.size());
  // Too many gaps (or too few survivors to trim): the window is not a
  // faithful 30 s average — discard it rather than averaging short.
  if (missing_ > max_missing_ || present <= 2 * trim_) {
    ++windows_discarded_;
    reset();
    return r;
  }
  r.valid = true;
  std::vector<double> instance(dim_, 0.0);
  if (trim_ == 0) {
    for (const auto& row : buffer_)
      for (std::size_t i = 0; i < dim_; ++i) instance[i] += row[i];
    for (std::size_t i = 0; i < dim_; ++i)
      instance[i] /= static_cast<double>(present);
  } else {
    std::vector<double> column(static_cast<std::size_t>(present));
    for (std::size_t i = 0; i < dim_; ++i) {
      for (int s = 0; s < present; ++s)
        column[static_cast<std::size_t>(s)] =
            buffer_[static_cast<std::size_t>(s)][i];
      std::sort(column.begin(), column.end());
      double sum = 0.0;
      for (int s = trim_; s < present - trim_; ++s)
        sum += column[static_cast<std::size_t>(s)];
      instance[i] = sum / static_cast<double>(present - 2 * trim_);
    }
  }
  r.instance = std::move(instance);
  reset();
  return r;
}

std::optional<std::vector<double>> InstanceAggregator::add(
    const std::vector<double>& sample) {
  auto r = add_slot(sample);
  if (r.window_closed && r.valid) return std::move(r.instance);
  return std::nullopt;
}

void InstanceAggregator::reset() {
  slots_ = 0;
  missing_ = 0;
  buffer_.clear();
}

}  // namespace hpcap::counters
