// Fault injection for the counter sampling path.
//
// Real PMC reads are noisy and error-prone: multiplexing leaves gaps,
// NetBurst counters are 40 bits wide and wrap mid-run, a wedged perfctr
// driver returns stuck or garbage values, and a saturated tier can miss
// whole stretches of its 1 Hz sampling schedule. The paper's pitch is that
// HPC-based monitoring keeps working when application-level signals are
// unreliable — which only holds if the monitor survives unreliable
// *counters* too. FaultPlan/FaultInjector reproduce those failure modes
// deterministically (seeded, simulation-independent) so every downstream
// layer — InstanceAggregator, RowValidator, synopsis abstention, the
// coordinated predictor's stale-decision fallback — can be exercised and
// measured (bench_faults) instead of trusted.
//
// Injection is purely observational: it perturbs what the collectors
// *report*, never what the simulated tiers *do*, so ground-truth labels
// are identical with and without faults and accuracy degradation curves
// are directly comparable.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace hpcap::counters {

// Rates are per sampling tick (per metric row for row-scoped faults).
// A default-constructed plan injects nothing.
struct FaultPlan {
  // Whole-sample faults (the read never happens).
  double drop_rate = 0.0;      // P(this tick's sample is lost)
  double blackout_rate = 0.0;  // P(entering a whole-tier blackout)
  int blackout_duration = 20;  // ticks a blackout lasts

  // Row-scoped faults (the read happens but lies).
  double stuck_rate = 0.0;     // P(one metric freezes at its current value)
  int stuck_duration = 5;      // ticks a stuck metric keeps repeating
  double garbage_rate = 0.0;   // P(one metric reads NaN/Inf/absurd junk)
  double spike_rate = 0.0;     // P(one metric spikes by ~spike_magnitude x)
  double spike_magnitude = 100.0;

  std::uint64_t seed = 0x0FA417;

  bool enabled() const noexcept {
    return drop_rate > 0.0 || blackout_rate > 0.0 || stuck_rate > 0.0 ||
           garbage_rate > 0.0 || spike_rate > 0.0;
  }

  // The benchmark's one-knob mixed plan: `rate` is the headline fault
  // intensity (e.g. 0.05 for "5% faults"), split across all fault kinds in
  // fixed proportions so sweeps move every failure mode together.
  static FaultPlan mixed(double rate, std::uint64_t seed = 0x0FA417);
};

// Counts of injected faults, for reporting and plan verification.
struct FaultStats {
  std::uint64_t ticks = 0;           // step() calls
  std::uint64_t dropped = 0;         // isolated lost samples
  std::uint64_t blackout_ticks = 0;  // samples lost to blackouts
  std::uint64_t blackouts = 0;       // blackout episodes entered
  std::uint64_t stuck = 0;           // stuck episodes started
  std::uint64_t garbage = 0;         // garbage values written
  std::uint64_t spikes = 0;          // spike multipliers applied

  std::uint64_t lost_samples() const noexcept {
    return dropped + blackout_ticks;
  }
};

// Stateful per-stream perturber; make one per (tier, level) sample stream.
// Deterministic: the fault sequence depends only on (plan.seed, salt) and
// the order of step()/perturb() calls.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::uint64_t stream_salt);

  enum class SampleFate {
    kOk,        // the sample is read (perturb() may still corrupt it)
    kDropped,   // isolated loss: this tick's sample never arrives
    kBlackout,  // tier-wide outage: no samples until the blackout ends
  };

  // Advances the per-tick state machine (blackout countdown, drop draw).
  SampleFate step();

  // Applies row-scoped faults (stuck, garbage, spike) in place. Call only
  // for kOk ticks. The row's dimension fixes the stuck-state width on
  // first use and must stay constant.
  void perturb(std::vector<double>& row);

  bool in_blackout() const noexcept { return blackout_left_ > 0; }
  const FaultStats& stats() const noexcept { return stats_; }
  const FaultPlan& plan() const noexcept { return plan_; }

 private:
  FaultPlan plan_;
  Rng rng_;
  int blackout_left_ = 0;
  // Per-metric stuck state: value to repeat and ticks remaining.
  std::vector<double> stuck_value_;
  std::vector<int> stuck_left_;
  FaultStats stats_;
};

}  // namespace hpcap::counters
