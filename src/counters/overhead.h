// Monitoring-overhead injection (§V.D reproduction support).
//
// Collection cost is charged to the monitored tier as real CPU demand, so
// turning a collector on measurably reduces the capacity available to the
// workload — exactly how the paper measures overhead (throughput and
// latency normalized against a run without metric collection).
#pragma once

#include "sim/tier.h"

namespace hpcap::counters {

// Charges `cpu_seconds` of collection work to `tier`. The work is a small,
// kernel-ish job: modest footprint, high instruction density (it parses
// text / reads MSRs, it does not thrash caches).
void charge_collection_cost(sim::Tier& tier, double cpu_seconds);

}  // namespace hpcap::counters
