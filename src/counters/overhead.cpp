#include "counters/overhead.h"

namespace hpcap::counters {

void charge_collection_cost(sim::Tier& tier, double cpu_seconds) {
  if (cpu_seconds <= 0.0) return;
  sim::Tier::JobTag tag;
  tag.instr_per_demand_sec = 1.9e9;
  tag.footprint_mb = 0.5;
  tag.request_class = sim::RequestClass::kOrder;  // class tag is immaterial
  tier.execute(cpu_seconds, tag, [] {});
}

}  // namespace hpcap::counters
