// Synthetic hardware-performance-counter model.
//
// The physical testbed read NetBurst event counters through the PerfCtr
// kernel patch; this repo has no Pentium 4 to read, so the counters are
// synthesized from the simulator's ground-truth tier statistics. The model
// preserves the causal structure the paper's method depends on:
//
//   * retired instructions track *useful* work (contention-degraded), so
//     IPC falls as the tier slides from saturated into overloaded;
//   * L2 misses and TLB misses grow with the live memory footprint of
//     concurrently running jobs — a few heavy queries raise them sharply
//     even while thread counts stay low;
//   * resource-stall cycles account for the efficiency the contention
//     model removed, so stall_fraction ≈ 1 - efficiency;
//   * bus transactions follow L2 misses (line fills + write-backs);
//   * branch behavior shifts mildly with concurrency (more irregular
//     control flow under multiplexed request streams).
//
// Each counter gets multiplicative log-normal measurement noise plus a
// small additive background (daemons, kernel housekeeping), so 1-second
// samples are realistically jittery and the ML layer has to earn its
// accuracy.
#pragma once

#include <vector>

#include "counters/metric_catalog.h"
#include "sim/tier.h"
#include "util/rng.h"

namespace hpcap::counters {

class HpcModel {
 public:
  struct Params {
    // L2 references per 1000 instructions (L1 misses reaching L2).
    double l2_refs_per_kinstr = 42.0;
    // L2 miss-per-kinstr range as live footprint grows: misses rise from
    // `mpk_min` toward `mpk_min + mpk_range` with half-saturation at
    // `footprint_half_mb` (kept consistent with the tier's stall model).
    double mpk_min = 1.5;
    double mpk_range = 30.0;
    double footprint_half_mb = 256.0;
    // Branch profile.
    double branches_per_instr = 0.18;
    double mispred_base = 0.020;
    double mispred_load_range = 0.018;
    // Memory op profile.
    double loads_per_instr = 0.28;
    double stores_per_instr = 0.12;
    // Measurement noise: stddev of the multiplicative log-normal term.
    double noise_cv = 0.04;
    // Background activity (fraction of one core's cycles).
    double background_util = 0.004;
  };

  HpcModel(sim::Tier::Config tier, Params params, std::uint64_t seed);

  // Synthesizes one sample (layout per hpc_catalog()) for an interval.
  std::vector<double> synthesize(const sim::Tier::IntervalStats& s);

  const Params& params() const noexcept { return params_; }

 private:
  double noisy(double v);

  sim::Tier::Config tier_;
  Params params_;
  Rng rng_;
};

}  // namespace hpcap::counters
