#include "counters/fault.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace hpcap::counters {

FaultPlan FaultPlan::mixed(double rate, std::uint64_t seed) {
  if (rate < 0.0 || rate > 1.0)
    throw std::invalid_argument("FaultPlan::mixed: rate must be in [0, 1]");
  FaultPlan plan;
  plan.drop_rate = rate;
  plan.garbage_rate = 0.5 * rate;
  plan.spike_rate = 0.5 * rate;
  plan.stuck_rate = 0.25 * rate;
  // Rare but long: one blackout per ~1/(rate/20) ticks, long enough that
  // an affected window is discarded rather than averaged short.
  plan.blackout_rate = rate / 20.0;
  plan.blackout_duration = 20;
  plan.seed = seed;
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t stream_salt)
    : plan_(plan), rng_(Rng(plan.seed).split(stream_salt)) {
  const auto check = [](double p, const char* what) {
    if (p < 0.0 || p > 1.0)
      throw std::invalid_argument(std::string("FaultInjector: ") + what +
                                  " must be in [0, 1]");
  };
  check(plan_.drop_rate, "drop_rate");
  check(plan_.blackout_rate, "blackout_rate");
  check(plan_.stuck_rate, "stuck_rate");
  check(plan_.garbage_rate, "garbage_rate");
  check(plan_.spike_rate, "spike_rate");
  if (plan_.blackout_duration < 1 || plan_.stuck_duration < 1)
    throw std::invalid_argument("FaultInjector: durations must be >= 1");
}

FaultInjector::SampleFate FaultInjector::step() {
  ++stats_.ticks;
  if (blackout_left_ > 0) {
    --blackout_left_;
    ++stats_.blackout_ticks;
    return SampleFate::kBlackout;
  }
  if (plan_.blackout_rate > 0.0 && rng_.bernoulli(plan_.blackout_rate)) {
    ++stats_.blackouts;
    ++stats_.blackout_ticks;
    blackout_left_ = plan_.blackout_duration - 1;
    return SampleFate::kBlackout;
  }
  if (plan_.drop_rate > 0.0 && rng_.bernoulli(plan_.drop_rate)) {
    ++stats_.dropped;
    return SampleFate::kDropped;
  }
  return SampleFate::kOk;
}

void FaultInjector::perturb(std::vector<double>& row) {
  if (row.empty()) return;
  if (stuck_value_.empty()) {
    stuck_value_.assign(row.size(), 0.0);
    stuck_left_.assign(row.size(), 0);
  }
  if (row.size() != stuck_value_.size())
    throw std::invalid_argument("FaultInjector::perturb: row width changed");

  // Ongoing stuck episodes override the fresh read.
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (stuck_left_[i] > 0) {
      --stuck_left_[i];
      row[i] = stuck_value_[i];
    }
  }
  if (plan_.stuck_rate > 0.0 && rng_.bernoulli(plan_.stuck_rate)) {
    const std::size_t i = rng_.uniform_u64(row.size());
    stuck_value_[i] = row[i];
    stuck_left_[i] = plan_.stuck_duration;
    ++stats_.stuck;
  }
  if (plan_.garbage_rate > 0.0 && rng_.bernoulli(plan_.garbage_rate)) {
    const std::size_t i = rng_.uniform_u64(row.size());
    switch (rng_.uniform_u64(4)) {
      case 0:
        row[i] = std::numeric_limits<double>::quiet_NaN();
        break;
      case 1:
        row[i] = std::numeric_limits<double>::infinity();
        break;
      case 2:
        // An uninitialized-buffer style read: huge finite junk.
        row[i] = 1e30 * (0.5 + rng_.uniform());
        break;
      default:
        row[i] = -row[i] - rng_.uniform(0.0, 1e6);
        break;
    }
    ++stats_.garbage;
  }
  if (plan_.spike_rate > 0.0 && rng_.bernoulli(plan_.spike_rate)) {
    const std::size_t i = rng_.uniform_u64(row.size());
    row[i] *= plan_.spike_magnitude * (0.5 + rng_.uniform());
    ++stats_.spikes;
  }
}

}  // namespace hpcap::counters
