#include "counters/hpc_model.h"

#include <algorithm>
#include <cmath>

namespace hpcap::counters {

HpcModel::HpcModel(sim::Tier::Config tier, Params params, std::uint64_t seed)
    : tier_(std::move(tier)), params_(params), rng_(seed) {}

double HpcModel::noisy(double v) {
  if (v <= 0.0) return 0.0;
  return v * rng_.lognormal_mean_cv(1.0, params_.noise_cv);
}

std::vector<double> HpcModel::synthesize(const sim::Tier::IntervalStats& s) {
  std::vector<double> m(kHpcMetricCount, 0.0);
  const double dur = std::max(s.duration, 1e-9);
  const double hz = tier_.freq_ghz * 1e9;
  const double total_cycles = static_cast<double>(tier_.cores) * hz * dur;

  // Background housekeeping keeps counters from reading exactly zero when
  // the tier idles (kernel ticks, daemons).
  const double bg_cycles = params_.background_util * hz * dur;
  const double bg_instr = bg_cycles * 0.9;

  const double busy_cycles = s.core_busy_seconds * hz + bg_cycles;
  const double halted = std::max(0.0, total_cycles - busy_cycles);
  const double instr = s.instr_done + bg_instr;

  // Live-footprint-driven memory behavior.
  const double fp = s.mean_footprint_mb();
  const double fp_factor = fp / (fp + params_.footprint_half_mb);
  const double mpk = params_.mpk_min + params_.mpk_range * fp_factor;
  const double refs_pk =
      params_.l2_refs_per_kinstr * (1.0 + 0.5 * fp_factor);
  const double l2_refs = instr / 1000.0 * refs_pk;
  const double l2_miss = instr / 1000.0 * mpk;

  // Stall cycles: what the contention model withheld plus a per-miss
  // penalty component (memory latency visible to the pipeline).
  const double miss_penalty_cycles = l2_miss * 180.0;
  const double stall =
      s.stall_core_seconds * hz + 0.35 * miss_penalty_cycles;

  // Branch mix: more concurrently *executing* streams -> slightly worse
  // prediction (blocked threads execute nothing).
  const double run_load = std::min(
      1.0, s.mean_active() / (4.0 * static_cast<double>(tier_.cores)));
  const double branches = instr * params_.branches_per_instr;
  const double mispred_rate =
      params_.mispred_base + params_.mispred_load_range * run_load;

  m[kHpcInstrRetired] = noisy(instr);
  m[kHpcCyclesBusy] = noisy(busy_cycles);
  m[kHpcCyclesHalted] = noisy(halted);
  m[kHpcL2References] = noisy(l2_refs);
  m[kHpcL2Misses] = noisy(l2_miss);
  m[kHpcStallCycles] = noisy(std::min(stall, busy_cycles));
  m[kHpcBranches] = noisy(branches);
  m[kHpcBranchMispredictions] = noisy(branches * mispred_rate);
  // Bus: line fills for misses plus write-back traffic.
  m[kHpcBusTransactions] = noisy(l2_miss * 1.4 + instr * 1e-4);
  m[kHpcDtlbMisses] = noisy(instr / 1000.0 * (0.4 + 3.0 * fp_factor));
  m[kHpcItlbMisses] = noisy(instr / 1000.0 * 0.05);
  m[kHpcMemLoads] = noisy(instr * params_.loads_per_instr);
  m[kHpcMemStores] = noisy(instr * params_.stores_per_instr);
  m[kHpcPrefetches] = noisy(l2_refs * 0.30);

  // Derived rates are computed from the *noisy* raw counters, as a real
  // tool would compute them from the registers it read.
  const double cb = std::max(m[kHpcCyclesBusy], 1.0);
  m[kHpcIpc] = m[kHpcInstrRetired] / cb;
  m[kHpcL2MissRate] =
      m[kHpcL2References] > 0.0 ? m[kHpcL2Misses] / m[kHpcL2References] : 0.0;
  m[kHpcL2MissPerKInstr] =
      m[kHpcInstrRetired] > 0.0
          ? m[kHpcL2Misses] / (m[kHpcInstrRetired] / 1000.0)
          : 0.0;
  m[kHpcStallFraction] = m[kHpcStallCycles] / cb;
  m[kHpcBranchMispredRate] =
      m[kHpcBranches] > 0.0 ? m[kHpcBranchMispredictions] / m[kHpcBranches]
                            : 0.0;
  m[kHpcUopsPerCycle] = m[kHpcIpc] * 1.35;  // NetBurst uop expansion
  return m;
}

}  // namespace hpcap::counters
