// PerfCtr-style counter reader emulation.
//
// The paper reads NetBurst PMCs through the PerfCtr kernel patch in
// "global mode": per-CPU virtual counters that accumulate monotonically
// and are sampled by a lightweight user-space tool that differences
// successive reads ("we limited our tool to minimum functionalities that
// just initialize and read hardware counters"). This facade reproduces
// that interface on top of the synthetic HpcModel, so code written against
// a cumulative-counter API (like the paper's tool) ports directly:
//
//   PerfctrEmulator dev(tier_config, seed);
//   dev.advance(interval_stats);        // simulation feeds it per second
//   auto now = dev.read();              // cumulative, monotone
//   auto rates = PerfctrEmulator::rates(prev, now, elapsed_seconds);
//
// Only the raw (count-valued) events accumulate; derived ratios are the
// consumer's job, exactly as with real PMCs.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "counters/hpc_model.h"
#include "counters/metric_catalog.h"

namespace hpcap::counters {

// The raw, accumulating events (a subset of the catalog: ratios excluded).
enum PerfctrEvent : std::size_t {
  kEvtInstrRetired = 0,
  kEvtCyclesBusy,
  kEvtCyclesHalted,
  kEvtL2References,
  kEvtL2Misses,
  kEvtStallCycles,
  kEvtBranches,
  kEvtBranchMispredictions,
  kEvtBusTransactions,
  kEvtDtlbMisses,
  kEvtItlbMisses,
  kEvtMemLoads,
  kEvtMemStores,
  kEvtPrefetches,
  kPerfctrEventCount,
};

// Cumulative counter snapshot, one slot per PerfctrEvent.
using PerfctrCounts = std::array<std::uint64_t, kPerfctrEventCount>;

class PerfctrEmulator {
 public:
  // NetBurst IA32_PMCx counters are 40 bits wide: a busy 2+ GHz part wraps
  // a cycle counter every ~5-9 minutes, so any differencing consumer must
  // be wraparound-correct. The emulator reproduces the width faithfully.
  static constexpr int kCounterBits = 40;
  static constexpr std::uint64_t kCounterMask =
      (std::uint64_t{1} << kCounterBits) - 1;

  PerfctrEmulator(sim::Tier::Config tier, std::uint64_t seed);

  // Accumulates one sampling interval's activity into the counters
  // (modulo 2^40, as the hardware does). Garbage samples are defined
  // behavior: NaN counts nothing, and a value at or above the counter
  // width (the fault layer's +Inf / 1e30 junk class) saturates the
  // increment at kCounterMask instead of hitting an undefined
  // float→integer cast.
  void advance(const sim::Tier::IntervalStats& stats);

  // Reads the cumulative counters (monotone modulo the counter width).
  PerfctrCounts read() const noexcept { return counts_; }

  // Differences two snapshots into per-second event rates. An `after`
  // snapshot numerically below `before` is a counter that wrapped since
  // the last read; the delta is corrected modulo 2^kCounterBits (valid as
  // long as fewer than one full wrap elapsed between snapshots — at 1 Hz
  // sampling the paper's tool is orders of magnitude inside that bound).
  // Throws std::invalid_argument if elapsed_seconds <= 0.
  static std::array<double, kPerfctrEventCount> rates(
      const PerfctrCounts& before, const PerfctrCounts& after,
      double elapsed_seconds);

  // Maps an accumulating event to its catalog metric index.
  static std::size_t catalog_index(PerfctrEvent event);

 private:
  HpcModel model_;
  PerfctrCounts counts_{};
};

}  // namespace hpcap::counters
