#include "counters/metric_catalog.h"

#include <algorithm>

namespace hpcap::counters {

MetricCatalog::MetricCatalog(std::string level,
                             std::vector<std::string> names)
    : level_(std::move(level)), names_(std::move(names)) {}

std::size_t MetricCatalog::index_of(const std::string& name) const noexcept {
  const auto it = std::find(names_.begin(), names_.end(), name);
  return it == names_.end() ? npos
                            : static_cast<std::size_t>(it - names_.begin());
}

const MetricCatalog& hpc_catalog() {
  static const MetricCatalog catalog("hpc", {
      "instr_retired",        // 0
      "cycles_busy",          // 1  non-halted cycles
      "cycles_halted",        // 2
      "ipc",                  // 3  instr_retired / cycles_busy
      "l2_references",        // 4
      "l2_misses",            // 5
      "l2_miss_rate",         // 6  misses / references
      "l2_miss_per_kinstr",   // 7
      "stall_cycles",         // 8  resource stalls
      "stall_fraction",       // 9  stall_cycles / cycles_busy
      "branches",             // 10
      "branch_mispred",       // 11
      "branch_mispred_rate",  // 12
      "bus_transactions",     // 13 front-side bus activity
      "dtlb_misses",          // 14
      "itlb_misses",          // 15
      "mem_loads",            // 16
      "mem_stores",           // 17
      "uops_per_cycle",       // 18
      "prefetches",           // 19
  });
  return catalog;
}

const MetricCatalog& os_catalog() {
  // The 64 sar-style fields collected by the paper's Sysstat setup.
  static const MetricCatalog catalog("os", {
      "cpu_user_pct",      // 0
      "cpu_system_pct",    // 1
      "cpu_iowait_pct",    // 2
      "cpu_idle_pct",      // 3
      "runq_sz",           // 4
      "plist_sz",          // 5
      "ldavg_1",           // 6
      "ldavg_5",           // 7
      "ldavg_15",          // 8
      "cswch_per_s",       // 9
      "intr_per_s",        // 10
      "proc_per_s",        // 11
      "kbmemfree",         // 12
      "kbmemused",         // 13
      "memused_pct",       // 14
      "kbbuffers",         // 15
      "kbcached",          // 16
      "kbcommit",          // 17
      "commit_pct",        // 18
      "kbactive",          // 19
      "kbinact",           // 20
      "kbswpfree",         // 21
      "kbswpused",         // 22
      "swpused_pct",       // 23
      "kbswpcad",          // 24
      "pgpgin_per_s",      // 25
      "pgpgout_per_s",     // 26
      "fault_per_s",       // 27
      "majflt_per_s",      // 28
      "pgfree_per_s",      // 29
      "pgscank_per_s",     // 30
      "pgscand_per_s",     // 31
      "pgsteal_per_s",     // 32
      "io_tps",            // 33
      "io_rtps",           // 34
      "io_wtps",           // 35
      "bread_per_s",       // 36
      "bwrtn_per_s",       // 37
      "rxpck_per_s",       // 38
      "txpck_per_s",       // 39
      "rxkb_per_s",        // 40
      "txkb_per_s",        // 41
      "rxerr_per_s",       // 42
      "txerr_per_s",       // 43
      "rxdrop_per_s",      // 44
      "txdrop_per_s",      // 45
      "totsck",            // 46
      "tcpsck",            // 47
      "udpsck",            // 48
      "tcp_tw",            // 49
      "tcp_active_per_s",  // 50
      "tcp_passive_per_s", // 51
      "tcp_iseg_per_s",    // 52
      "tcp_oseg_per_s",    // 53
      "file_nr",           // 54
      "inode_nr",          // 55
      "dentunusd",         // 56
      "pty_nr",            // 57
      "sda_tps",           // 58
      "sda_await_ms",      // 59
      "sda_util_pct",      // 60
      "steal_pct",         // 61
      "nice_pct",          // 62
      "irq_pct",           // 63
  });
  return catalog;
}

}  // namespace hpcap::counters
