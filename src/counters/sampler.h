// Sampling and instance aggregation.
//
// The paper samples every tier once per second and averages 30 consecutive
// samples into one training/testing *instance* (§IV.A). InstanceAggregator
// implements exactly that windowing; the collectors pair a metric model
// with the runtime cost of reading it, so the collection overhead the
// paper measures in §V.D emerges inside the simulation rather than being
// asserted.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "counters/hpc_model.h"
#include "counters/os_model.h"

namespace hpcap::counters {

// Averages fixed-size windows of samples into instances.
//
// Gap-aware: a window is a run of *slots* (ticks), not of successful
// samples. A dropped read (mark_missing) or a sample carrying non-finite
// values consumes a slot without contributing data, so windows stay
// aligned across tiers and levels even under faults. When a window closes
// with too many missing slots the instance is discarded — an average over
// a handful of surviving samples is not a 30 s instance and must not be
// passed off as one — and windows_discarded() counts the loss. Optional
// per-metric trimming (trimmed_samples > 0) drops the k highest and k
// lowest surviving samples per metric before averaging, which bounds the
// damage a spike or garbage outlier can do to the window mean. With no
// missing slots and trim 0 the result is bit-identical to a plain mean.
class InstanceAggregator {
 public:
  // `max_missing_fraction`: a closing window with more than
  // floor(fraction * window) missing slots is discarded.
  // `trimmed_samples`: per-metric count trimmed from each extreme.
  InstanceAggregator(std::size_t dim, int samples_per_instance,
                     double max_missing_fraction = 0.5,
                     int trimmed_samples = 0);

  // Outcome of one slot (see add_slot / mark_missing).
  struct SlotResult {
    bool window_closed = false;
    bool valid = false;  // instance usable (enough surviving samples)
    int missing = 0;     // missing slots in the closed window
    std::optional<std::vector<double>> instance;  // set iff closed && valid
  };

  // Zero-copy outcome of one slot: `instance` (non-empty iff closed &&
  // valid) is a span into a reusable member buffer, valid until the next
  // add_slot*/mark_missing* call on this aggregator. The daemon's batch
  // path copies the span straight into its window block without the
  // per-window vector the legacy SlotResult materializes.
  struct SlotView {
    bool window_closed = false;
    bool valid = false;
    int missing = 0;
    std::span<const double> instance;
  };

  // Adds one sample slot. A sample with any non-finite entry is treated
  // as a missing slot (a garbage read is a failed read). Throws
  // std::invalid_argument on dimension mismatch.
  SlotView add_slot_view(std::span<const double> sample);

  // Consumes one slot with no sample (dropped read, tier blackout).
  SlotView mark_missing_view();

  // Legacy copying interface (wraps the view variants).
  SlotResult add_slot(const std::vector<double>& sample);
  SlotResult mark_missing();

  // Legacy interface: returns the averaged instance when a window fills
  // (and survives the missing-slot check).
  std::optional<std::vector<double>> add(const std::vector<double>& sample);

  // Discards any partial window (e.g. at a workload-segment boundary, so
  // instances never straddle two regimes).
  void reset();

  int samples_buffered() const noexcept { return slots_; }
  int missing_in_window() const noexcept { return missing_; }
  int window() const noexcept { return window_; }
  int max_missing() const noexcept { return max_missing_; }
  std::uint64_t windows_discarded() const noexcept {
    return windows_discarded_;
  }

 private:
  SlotView close_if_full();
  static SlotResult to_result(const SlotView& v);

  std::size_t dim_;
  int window_;
  int max_missing_;
  int trim_;
  int slots_ = 0;    // slots consumed in the current window
  int missing_ = 0;  // missing slots among them
  int rows_ = 0;     // surviving samples buffered
  // Surviving samples of the open window in one flat row-major slab
  // (sized window_ * dim_ once at construction), in arrival order — the
  // untrimmed mean sums in exactly the order the old running-sum did.
  std::vector<double> buffer_;
  std::vector<double> instance_;  // SlotView::instance backing store
  std::vector<double> column_;    // per-metric gather scratch for trimming
  std::uint64_t windows_discarded_ = 0;
};

// A collector = metric model + per-sample CPU cost on the monitored tier.
//
// The paper's PerfCtr-based tool only initializes and reads counter MSRs
// ("event counter maintenance in hardware requires no runtime overhead"),
// so its per-sample cost is microscopic. Sysstat walks and parses /proc
// text files every tick, which on the testbed's Pentium 4 front end costs
// tens of milliseconds — about 4% of each one-second sampling period.
struct CollectorCosts {
  // CPU-seconds consumed on the sampled tier per 1 Hz sample.
  static constexpr double kHpcPerSample = 0.0003;  // read+log 20 counters
  static constexpr double kOsPerSample = 0.038;    // fork sar, parse /proc
};

class HpcCollector {
 public:
  HpcCollector(sim::Tier::Config tier, HpcModel::Params params,
               std::uint64_t seed)
      : model_(std::move(tier), params, seed) {}

  std::vector<double> collect(const sim::Tier::IntervalStats& s) {
    return model_.synthesize(s);
  }
  static double cost_per_sample() { return CollectorCosts::kHpcPerSample; }

 private:
  HpcModel model_;
};

class OsCollector {
 public:
  OsCollector(sim::Tier::Config tier, OsModel::Params params,
              std::uint64_t seed)
      : model_(std::move(tier), params, seed) {}

  std::vector<double> collect(const sim::Tier::IntervalStats& s,
                              const OsGauges& g) {
    return model_.synthesize(s, g);
  }
  static double cost_per_sample() { return CollectorCosts::kOsPerSample; }

 private:
  OsModel model_;
};

}  // namespace hpcap::counters
