// Sampling and instance aggregation.
//
// The paper samples every tier once per second and averages 30 consecutive
// samples into one training/testing *instance* (§IV.A). InstanceAggregator
// implements exactly that windowing; the collectors pair a metric model
// with the runtime cost of reading it, so the collection overhead the
// paper measures in §V.D emerges inside the simulation rather than being
// asserted.
#pragma once

#include <optional>
#include <vector>

#include "counters/hpc_model.h"
#include "counters/os_model.h"

namespace hpcap::counters {

// Averages fixed-size windows of samples into instances.
class InstanceAggregator {
 public:
  InstanceAggregator(std::size_t dim, int samples_per_instance);

  // Adds one sample; returns the averaged instance when a window fills.
  std::optional<std::vector<double>> add(const std::vector<double>& sample);

  // Discards any partial window (e.g. at a workload-segment boundary, so
  // instances never straddle two regimes).
  void reset();

  int samples_buffered() const noexcept { return count_; }
  int window() const noexcept { return window_; }

 private:
  std::size_t dim_;
  int window_;
  int count_ = 0;
  std::vector<double> sum_;
};

// A collector = metric model + per-sample CPU cost on the monitored tier.
//
// The paper's PerfCtr-based tool only initializes and reads counter MSRs
// ("event counter maintenance in hardware requires no runtime overhead"),
// so its per-sample cost is microscopic. Sysstat walks and parses /proc
// text files every tick, which on the testbed's Pentium 4 front end costs
// tens of milliseconds — about 4% of each one-second sampling period.
struct CollectorCosts {
  // CPU-seconds consumed on the sampled tier per 1 Hz sample.
  static constexpr double kHpcPerSample = 0.0003;  // read+log 20 counters
  static constexpr double kOsPerSample = 0.038;    // fork sar, parse /proc
};

class HpcCollector {
 public:
  HpcCollector(sim::Tier::Config tier, HpcModel::Params params,
               std::uint64_t seed)
      : model_(std::move(tier), params, seed) {}

  std::vector<double> collect(const sim::Tier::IntervalStats& s) {
    return model_.synthesize(s);
  }
  static double cost_per_sample() { return CollectorCosts::kHpcPerSample; }

 private:
  HpcModel model_;
};

class OsCollector {
 public:
  OsCollector(sim::Tier::Config tier, OsModel::Params params,
              std::uint64_t seed)
      : model_(std::move(tier), params, seed) {}

  std::vector<double> collect(const sim::Tier::IntervalStats& s,
                              const OsGauges& g) {
    return model_.synthesize(s, g);
  }
  static double cost_per_sample() { return CollectorCosts::kOsPerSample; }

 private:
  OsModel model_;
};

}  // namespace hpcap::counters
