#include "counters/perfctr.h"

#include <stdexcept>

namespace hpcap::counters {

namespace {
constexpr std::array<std::size_t, kPerfctrEventCount> kCatalogIndex = {
    kHpcInstrRetired, kHpcCyclesBusy,  kHpcCyclesHalted,
    kHpcL2References, kHpcL2Misses,    kHpcStallCycles,
    kHpcBranches,     kHpcBranchMispredictions,
    kHpcBusTransactions, kHpcDtlbMisses, kHpcItlbMisses,
    kHpcMemLoads,     kHpcMemStores,   kHpcPrefetches,
};
}  // namespace

PerfctrEmulator::PerfctrEmulator(sim::Tier::Config tier, std::uint64_t seed)
    : model_(std::move(tier), HpcModel::Params{}, seed) {}

void PerfctrEmulator::advance(const sim::Tier::IntervalStats& stats) {
  const auto sample = model_.synthesize(stats);
  for (std::size_t e = 0; e < kPerfctrEventCount; ++e) {
    const double v = sample[kCatalogIndex[e]];
    // Guarded float→integer conversion: the plain cast is undefined for
    // NaN and for values >= 2^64, and corrupted interval records (the
    // fault layer's +Inf / 1e30 garbage class) do reach this path. NaN
    // fails both comparisons and counts nothing; anything at or above
    // the counter width saturates at the mask — a junk read cannot
    // carry more than one full wrap of information.
    std::uint64_t inc = 0;
    if (v >= static_cast<double>(kCounterMask)) {
      inc = kCounterMask;
    } else if (v > 0.0) {
      inc = static_cast<std::uint64_t>(v);
    }
    counts_[e] = (counts_[e] + inc) & kCounterMask;
  }
}

std::array<double, kPerfctrEventCount> PerfctrEmulator::rates(
    const PerfctrCounts& before, const PerfctrCounts& after,
    double elapsed_seconds) {
  if (elapsed_seconds <= 0.0)
    throw std::invalid_argument(
        "PerfctrEmulator::rates: elapsed_seconds must be > 0 (got a "
        "non-positive interval; differencing needs a real elapsed time)");
  std::array<double, kPerfctrEventCount> out{};
  for (std::size_t e = 0; e < kPerfctrEventCount; ++e) {
    // Modulo-2^40 subtraction: an apparent backwards step is a wrap.
    const std::uint64_t delta = (after[e] - before[e]) & kCounterMask;
    out[e] = static_cast<double>(delta) / elapsed_seconds;
  }
  return out;
}

std::size_t PerfctrEmulator::catalog_index(PerfctrEvent event) {
  if (event >= kPerfctrEventCount)
    throw std::out_of_range("PerfctrEmulator::catalog_index");
  return kCatalogIndex[event];
}

}  // namespace hpcap::counters
