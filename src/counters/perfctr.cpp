#include "counters/perfctr.h"

#include <stdexcept>

namespace hpcap::counters {

namespace {
constexpr std::array<std::size_t, kPerfctrEventCount> kCatalogIndex = {
    kHpcInstrRetired, kHpcCyclesBusy,  kHpcCyclesHalted,
    kHpcL2References, kHpcL2Misses,    kHpcStallCycles,
    kHpcBranches,     kHpcBranchMispredictions,
    kHpcBusTransactions, kHpcDtlbMisses, kHpcItlbMisses,
    kHpcMemLoads,     kHpcMemStores,   kHpcPrefetches,
};
}  // namespace

PerfctrEmulator::PerfctrEmulator(sim::Tier::Config tier, std::uint64_t seed)
    : model_(std::move(tier), HpcModel::Params{}, seed) {}

void PerfctrEmulator::advance(const sim::Tier::IntervalStats& stats) {
  const auto sample = model_.synthesize(stats);
  for (std::size_t e = 0; e < kPerfctrEventCount; ++e) {
    const double v = sample[kCatalogIndex[e]];
    counts_[e] += v > 0.0 ? static_cast<std::uint64_t>(v) : 0u;
  }
}

std::array<double, kPerfctrEventCount> PerfctrEmulator::rates(
    const PerfctrCounts& before, const PerfctrCounts& after,
    double elapsed_seconds) {
  if (elapsed_seconds <= 0.0)
    throw std::invalid_argument("PerfctrEmulator::rates: elapsed <= 0");
  std::array<double, kPerfctrEventCount> out{};
  for (std::size_t e = 0; e < kPerfctrEventCount; ++e) {
    if (after[e] < before[e])
      throw std::invalid_argument(
          "PerfctrEmulator::rates: counters went backwards");
    out[e] = static_cast<double>(after[e] - before[e]) / elapsed_seconds;
  }
  return out;
}

std::size_t PerfctrEmulator::catalog_index(PerfctrEvent event) {
  if (event >= kPerfctrEventCount)
    throw std::out_of_range("PerfctrEmulator::catalog_index");
  return kCatalogIndex[event];
}

}  // namespace hpcap::counters
