// Information-theoretic quantities over discretized attributes:
//   * information gain IG(C; A) — the paper's attribute-relevance measure
//     (§II.B.2);
//   * conditional mutual information I(Ai; Aj | C) — the edge weights of
//     the Chow–Liu tree that structures the TAN classifier.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/dataset.h"
#include "ml/discretize.h"

namespace hpcap::ml {

// Entropy (bits) of the class variable.
double class_entropy(const DatasetView& d);

// Information gain of attribute `attr` about the class, under `disc`.
double information_gain(const DatasetView& d, const Discretizer& disc,
                        std::size_t attr);

// Information gain of every attribute.
std::vector<double> information_gains(const DatasetView& d,
                                      const Discretizer& disc);

// Conditional mutual information I(A_i; A_j | C) in bits.
double conditional_mutual_information(const DatasetView& d,
                                      const Discretizer& disc, std::size_t i,
                                      std::size_t j);

}  // namespace hpcap::ml
