// Naive Bayes synopsis builder.
//
// Attributes are discretized with the supervised MDL discretizer, then
// modeled as conditionally independent given the class, with Laplace
// smoothing on every conditional table. The independence assumption is
// exactly what TAN relaxes — the paper attributes Naive Bayes' accuracy
// deficit to it ("strong assumption on the independence of each metric",
// §V.B observation 3): HPC metrics are strongly coupled (misses drive
// stalls drive IPC), so one extra dependency edge per attribute helps.
#pragma once

#include <iosfwd>
#include <optional>
#include <vector>

#include "ml/classifier.h"
#include "ml/discretize.h"

namespace hpcap::ml {

class NaiveBayes final : public Classifier {
 public:
  explicit NaiveBayes(double laplace = 1.0) : laplace_(laplace) {}

  void fit(const DatasetView& d) override;
  double predict_score(std::span<const double> x) const override;
  // Batch kernel: walks each attribute's cut range and conditional table
  // once per column instead of once per row; per-row log-prob additions
  // stay in attribute order, so results are bit-identical to the scalar
  // predict_score.
  void predict_score_many(const double* rows, std::size_t dim,
                          std::size_t count, double* out) const override;
  bool fitted() const noexcept override { return disc_.has_value(); }
  std::unique_ptr<Classifier> clone() const override {
    return std::make_unique<NaiveBayes>(laplace_);
  }
  std::string name() const override { return "Naive"; }

  void save(std::ostream& os) const;
  static NaiveBayes load(std::istream& is);

 private:
  double laplace_;
  std::optional<Discretizer> disc_;
  double log_prior_[2] = {0.0, 0.0};
  // log P(A_a = bin | C = c), every attribute's (bins × 2) table packed
  // into one flat block: attribute a's entry for (bin, c) lives at
  // log_cond_[cond_offsets_[a] + bin * 2 + c]. Prediction adds log
  // probabilities straight out of this block — no per-attribute vector
  // hop, no allocation.
  std::vector<double> log_cond_;
  std::vector<std::size_t> cond_offsets_;  // size dim + 1
};

}  // namespace hpcap::ml
