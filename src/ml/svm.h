// Support Vector Machine synopsis builder (SMO training).
//
// A soft-margin SVM with an RBF kernel (gamma defaults to the "scale"
// heuristic 1/(d·Var[x]) on standardized features), trained with the
// simplified Sequential Minimal Optimization procedure: sweep candidate
// first multipliers, pick the partner at random, and update pairs until a
// full pass makes no progress. The full kernel matrix is cached — synopsis
// training sets are a few hundred instances, so the O(n²) cache is cheap
// while making SMO's inner loop branch-free.
//
// The paper finds SVM tied with TAN for accuracy but ~34x more expensive
// to build (1710 ms vs 50 ms, §V.B) — the per-iteration kernel work in
// SMO reproduces that cost ordering naturally.
#pragma once

#include <iosfwd>
#include <vector>

#include "ml/classifier.h"

namespace hpcap::ml {

enum class SvmKernel { kLinear, kRbf };

struct SvmOptions {
  SvmKernel kernel = SvmKernel::kRbf;
  double c = 4.0;          // soft-margin penalty
  double gamma = 0.0;      // RBF width; <= 0 means the "scale" heuristic
  double tol = 1e-3;       // KKT violation tolerance
  int max_passes = 8;      // no-progress passes before stopping
  int max_iterations = 40000;
  std::uint64_t seed = 7;  // partner-selection randomness
};

class Svm final : public Classifier {
 public:
  using Kernel = SvmKernel;
  using Options = SvmOptions;

  explicit Svm(Options opts = Options()) : opts_(opts) {}

  void fit(const DatasetView& d) override;
  double predict_score(std::span<const double> x) const override;
  bool fitted() const noexcept override { return fitted_; }
  std::unique_ptr<Classifier> clone() const override {
    return std::make_unique<Svm>(opts_);
  }
  std::string name() const override { return "SVM"; }

  std::size_t support_vector_count() const noexcept;
  double bias() const noexcept { return b_; }

  void save(std::ostream& os) const;
  static Svm load(std::istream& is);

 private:
  double kernel(std::span<const double> a, std::span<const double> b) const;
  std::vector<double> standardize(std::span<const double> x) const;
  double decision(std::span<const double> x_std) const;

  Options opts_;
  bool fitted_ = false;
  double gamma_ = 1.0;
  std::vector<double> mean_, scale_;
  std::vector<std::vector<double>> sv_x_;  // standardized training rows
  std::vector<double> alpha_y_;            // alpha_i * y_i (y in {-1,+1})
  double b_ = 0.0;
};

}  // namespace hpcap::ml
