// Support Vector Machine synopsis builder (SMO training).
//
// A soft-margin SVM with an RBF kernel (gamma defaults to the "scale"
// heuristic 1/(d·Var[x]) on standardized features), trained with
// Sequential Minimal Optimization. The trainer keeps an incrementally
// updated error cache E[i] = f(i) − y[i]: KKT-violation checks are O(1)
// lookups, and only a successful pair update pays O(n) to fold the two
// rank-one kernel contributions (plus the bias shift) back into the
// cache. The second multiplier is chosen by the max-|E_i − E_j|
// working-set heuristic, with a seeded random fallback when the heuristic
// partner cannot make progress.
//
// Training rows are standardized into one flat row-major buffer, and the
// kernel matrix is filled symmetrically in row bands on the util/parallel
// pool (each entry is a pure function of its row pair, so the fill is
// bit-identical at every thread count). Sets larger than
// `dense_kernel_limit` switch to a capped LRU row cache that computes
// kernel rows on demand instead of materializing O(n²) doubles.
//
// The paper finds SVM tied with TAN for accuracy but ~34x more expensive
// to build (1710 ms vs 50 ms, §V.B) — SMO's O(n) work per update keeps
// that cost ordering while staying several-fold cheaper than the naive
// recompute-f(i)-per-touch procedure.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "ml/classifier.h"

namespace hpcap::ml {

enum class SvmKernel { kLinear, kRbf };

struct SvmOptions {
  SvmKernel kernel = SvmKernel::kRbf;
  double c = 4.0;          // soft-margin penalty
  double gamma = 0.0;      // RBF width; <= 0 means the "scale" heuristic
  double tol = 1e-3;       // KKT violation tolerance
  int max_passes = 8;      // no-progress passes before stopping
  int max_iterations = 40000;
  std::uint64_t seed = 7;  // partner-selection fallback randomness
  // Largest n for which the full n×n kernel matrix is materialized; above
  // it, kernel rows come from a capped LRU cache of `kernel_cache_rows`
  // rows (0 = derive as max(64, dense_kernel_limit² / n)).
  std::size_t dense_kernel_limit = 2048;
  std::size_t kernel_cache_rows = 0;
  // Testing hook: after every accepted pair update, recompute every
  // f(i) − y[i] from scratch and track the worst divergence from the
  // incremental error cache (error_cache_divergence()). O(n²·d) per
  // update — only for small property-test fits.
  bool audit_error_cache = false;
};

class Svm final : public Classifier {
 public:
  using Kernel = SvmKernel;
  using Options = SvmOptions;

  explicit Svm(Options opts = Options()) : opts_(opts) {}

  void fit(const DatasetView& d) override;
  double predict_score(std::span<const double> x) const override;
  // Batch kernel: standardizes the whole block once, then walks the
  // support vectors in cache-friendly blocks — each SV row is streamed
  // against every window in the batch before moving on, instead of
  // re-reading the full SV set per window. Per-row accumulation stays in
  // SV index order, so decision values are bit-identical to the scalar
  // predict_score.
  void predict_score_many(const double* rows, std::size_t dim,
                          std::size_t count, double* out) const override;
  bool fitted() const noexcept override { return fitted_; }
  std::unique_ptr<Classifier> clone() const override {
    return std::make_unique<Svm>(opts_);
  }
  std::string name() const override { return "SVM"; }

  std::size_t support_vector_count() const noexcept;
  double bias() const noexcept { return b_; }

  // Worst |E[i] − (f(i) − y[i])| observed during the last fit with
  // Options::audit_error_cache set (0.0 otherwise).
  double error_cache_divergence() const noexcept { return audit_divergence_; }

  void save(std::ostream& os) const;
  static Svm load(std::istream& is);

 private:
  double kernel_raw(const double* a, const double* b,
                    std::size_t p) const noexcept;
  // Standardizes x into `out` (size mean_.size()); attributes missing from
  // a short row are imputed with their training mean, i.e. standardized 0.
  void standardize_into(std::span<const double> x,
                        std::vector<double>& out) const;
  double decision(const double* x_std) const noexcept;

  Options opts_;
  bool fitted_ = false;
  double gamma_ = 1.0;
  double audit_divergence_ = 0.0;
  std::vector<double> mean_, scale_;
  std::size_t dim_ = 0;            // attribute count of the fitted model
  std::vector<double> sv_x_;       // standardized SV rows, flat, stride dim_
  std::vector<double> alpha_y_;    // alpha_i * y_i (y in {-1,+1})
  double b_ = 0.0;
};

}  // namespace hpcap::ml
