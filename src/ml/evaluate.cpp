#include "ml/evaluate.h"

#include <algorithm>
#include <stdexcept>

namespace hpcap::ml {

void Confusion::add(int truth, int predicted) noexcept {
  if (truth == 1)
    predicted == 1 ? ++tp : ++fn;
  else
    predicted == 0 ? ++tn : ++fp;
}

double Confusion::accuracy() const noexcept {
  const std::size_t t = total();
  return t ? static_cast<double>(tp + tn) / static_cast<double>(t) : 0.0;
}

double Confusion::tpr() const noexcept {
  const std::size_t p = tp + fn;
  return p ? static_cast<double>(tp) / static_cast<double>(p) : 0.0;
}

double Confusion::tnr() const noexcept {
  const std::size_t n = tn + fp;
  return n ? static_cast<double>(tn) / static_cast<double>(n) : 0.0;
}

double Confusion::balanced_accuracy() const noexcept {
  const bool has_pos = (tp + fn) > 0;
  const bool has_neg = (tn + fp) > 0;
  if (has_pos && has_neg) return 0.5 * (tpr() + tnr());
  if (has_pos) return tpr();
  if (has_neg) return tnr();
  return 0.0;
}

double Confusion::precision() const noexcept {
  const std::size_t p = tp + fp;
  return p ? static_cast<double>(tp) / static_cast<double>(p) : 0.0;
}

Confusion evaluate(const Classifier& clf, const Dataset& test) {
  Confusion c;
  for (std::size_t i = 0; i < test.size(); ++i)
    c.add(test.label(i), clf.predict(test.row(i)));
  return c;
}

Confusion cross_validate(const Classifier& prototype, const Dataset& d,
                         int folds, Rng& rng) {
  if (d.size() < static_cast<std::size_t>(folds))
    folds = std::max(2, static_cast<int>(d.size()));
  const auto fold_rows = d.stratified_folds(folds, rng);
  Confusion pooled;
  for (std::size_t held = 0; held < fold_rows.size(); ++held) {
    std::vector<std::size_t> train_rows;
    for (std::size_t f = 0; f < fold_rows.size(); ++f)
      if (f != held)
        train_rows.insert(train_rows.end(), fold_rows[f].begin(),
                          fold_rows[f].end());
    if (train_rows.empty() || fold_rows[held].empty()) continue;
    const Dataset train = d.subset(train_rows);
    // A fold whose training part lost one whole class cannot be fit
    // meaningfully; skip it (stratification makes this rare).
    if (train.positives() == 0 || train.negatives() == 0) continue;
    auto clf = prototype.clone();
    clf->fit(train);
    const Dataset test = d.subset(fold_rows[held]);
    const Confusion c = evaluate(*clf, test);
    pooled.tp += c.tp;
    pooled.tn += c.tn;
    pooled.fp += c.fp;
    pooled.fn += c.fn;
  }
  return pooled;
}

}  // namespace hpcap::ml
