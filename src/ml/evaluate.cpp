#include "ml/evaluate.h"

#include <algorithm>
#include <stdexcept>

#include "util/log.h"
#include "util/parallel.h"

namespace hpcap::ml {

void Confusion::add(int truth, int predicted) noexcept {
  if (truth == 1)
    predicted == 1 ? ++tp : ++fn;
  else
    predicted == 0 ? ++tn : ++fp;
}

double Confusion::accuracy() const noexcept {
  const std::size_t t = total();
  return t ? static_cast<double>(tp + tn) / static_cast<double>(t) : 0.0;
}

double Confusion::tpr() const noexcept {
  const std::size_t p = tp + fn;
  return p ? static_cast<double>(tp) / static_cast<double>(p) : 0.0;
}

double Confusion::tnr() const noexcept {
  const std::size_t n = tn + fp;
  return n ? static_cast<double>(tn) / static_cast<double>(n) : 0.0;
}

double Confusion::balanced_accuracy() const noexcept {
  const bool has_pos = (tp + fn) > 0;
  const bool has_neg = (tn + fp) > 0;
  if (has_pos && has_neg) return 0.5 * (tpr() + tnr());
  if (has_pos) return tpr();
  if (has_neg) return tnr();
  return 0.0;
}

double Confusion::precision() const noexcept {
  const std::size_t p = tp + fp;
  return p ? static_cast<double>(tp) / static_cast<double>(p) : 0.0;
}

Confusion evaluate(const Classifier& clf, const DatasetView& test) {
  Confusion c;
  for (std::size_t i = 0; i < test.size(); ++i)
    c.add(test.label(i), clf.predict(test.row(i)));
  return c;
}

CvResult cross_validate(const Classifier& prototype, const DatasetView& d,
                        int folds, Rng& rng) {
  if (d.size() < static_cast<std::size_t>(folds))
    folds = std::max(2, static_cast<int>(d.size()));
  const auto fold_rows = d.stratified_folds(folds, rng);

  // Each fold is independent: fit a clone on the k-1 training folds (a
  // zero-copy view) and evaluate on the held-out fold. Slots are written
  // per fold and pooled below in fold order, so the pooled counts do not
  // depend on the thread schedule.
  struct FoldOutcome {
    Confusion confusion;
    bool used = false;
  };
  // Cost hint: fitting one fold touches ~rows x dim cells a handful of
  // times (discretizer sorts, table counts). Small CVs — the inner loops
  // of forward selection evaluate dozens of them on candidate subsets —
  // fall under the inline threshold and never pay pool dispatch; only
  // full-width CVs on real training sets fan out.
  const double ns_per_fold =
      static_cast<double>(d.size()) * static_cast<double>(d.dim()) * 200.0;
  const std::size_t grain =
      util::grain_for_cost(fold_rows.size(), ns_per_fold);
  const auto outcomes = util::parallel_map(
      fold_rows.size(),
      [&](std::size_t held) -> FoldOutcome {
        std::vector<std::size_t> train_rows;
        for (std::size_t f = 0; f < fold_rows.size(); ++f)
          if (f != held)
            train_rows.insert(train_rows.end(), fold_rows[f].begin(),
                              fold_rows[f].end());
        if (train_rows.empty() || fold_rows[held].empty()) return {};
        const DatasetView train = d.select(train_rows);
        // A fold whose training part lost one whole class cannot be fit
        // meaningfully; skip it (stratification makes this rare).
        if (train.positives() == 0 || train.negatives() == 0) return {};
        auto clf = prototype.clone();
        clf->fit(train);
        return {evaluate(*clf, d.select(fold_rows[held])), true};
      },
      grain);

  CvResult result;
  result.folds_requested = static_cast<int>(fold_rows.size());
  for (const auto& out : outcomes) {
    if (!out.used) continue;
    ++result.folds_used;
    result.confusion.tp += out.confusion.tp;
    result.confusion.tn += out.confusion.tn;
    result.confusion.fp += out.confusion.fp;
    result.confusion.fn += out.confusion.fn;
  }
  if (result.folds_used < result.folds_requested) {
    HPCAP_WARN << "cross_validate: skipped "
               << (result.folds_requested - result.folds_used) << " of "
               << result.folds_requested
               << " folds (empty or one-class training split); pooled "
               << "confusion covers " << result.confusion.total()
               << " instances";
  }
  return result;
}

}  // namespace hpcap::ml
