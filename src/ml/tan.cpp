#include "ml/tan.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "ml/info.h"

namespace hpcap::ml {

void Tan::fit(const DatasetView& d) {
  if (d.empty()) throw std::invalid_argument("Tan: empty data");
  const std::size_t p = d.dim();
  // Fallback bins keep marginally-silent attributes available to the
  // dependency edges (see mdl_with_fallback).
  disc_ = Discretizer::mdl_with_fallback(d);

  // Pairwise conditional mutual information.
  std::vector<std::vector<double>> cmi(p, std::vector<double>(p, 0.0));
  for (std::size_t i = 0; i < p; ++i)
    for (std::size_t j = i + 1; j < p; ++j)
      cmi[i][j] = cmi[j][i] =
          conditional_mutual_information(d, *disc_, i, j);

  // Maximum spanning tree via Prim, rooted at attribute 0; edges point
  // from the tree toward newly added vertices, so `parent_` falls out of
  // the construction order.
  parent_.assign(p, -1);
  if (p > 1) {
    std::vector<bool> in_tree(p, false);
    std::vector<double> best_w(p, -1.0);
    std::vector<int> best_from(p, -1);
    in_tree[0] = true;
    for (std::size_t j = 1; j < p; ++j) {
      best_w[j] = cmi[0][j];
      best_from[j] = 0;
    }
    for (std::size_t added = 1; added < p; ++added) {
      std::size_t pick = 0;
      double w = -1.0;
      for (std::size_t j = 0; j < p; ++j)
        if (!in_tree[j] && best_w[j] > w) {
          w = best_w[j];
          pick = j;
        }
      in_tree[pick] = true;
      parent_[pick] = best_from[pick];
      for (std::size_t j = 0; j < p; ++j)
        if (!in_tree[j] && cmi[pick][j] > best_w[j]) {
          best_w[j] = cmi[pick][j];
          best_from[j] = static_cast<int>(pick);
        }
    }
  }

  // Priors.
  const auto n = static_cast<double>(d.size());
  const double n1 = static_cast<double>(d.positives());
  const double n0 = n - n1;
  log_prior_[0] = std::log((n0 + laplace_) / (n + 2.0 * laplace_));
  log_prior_[1] = std::log((n1 + laplace_) / (n + 2.0 * laplace_));

  // Conditional tables P(A_a | parent_bin, C), packed flat.
  parent_bins_.assign(p, 1);
  cond_offsets_.assign(p + 1, 0);
  for (std::size_t a = 0; a < p; ++a) {
    const std::size_t pbins =
        parent_[a] >= 0 ? disc_->bins(static_cast<std::size_t>(parent_[a]))
                        : 1;
    parent_bins_[a] = pbins;
    cond_offsets_[a + 1] = cond_offsets_[a] + disc_->bins(a) * pbins * 2;
  }
  log_cond_.assign(cond_offsets_.back(), 0.0);
  std::vector<double> counts;
  for (std::size_t a = 0; a < p; ++a) {
    const std::size_t bins = disc_->bins(a);
    const std::size_t pbins = parent_bins_[a];
    counts.assign(bins * pbins * 2, 0.0);
    for (std::size_t i = 0; i < d.size(); ++i) {
      const std::size_t b = disc_->bin_of(a, d.row(i)[a]);
      const std::size_t pb =
          parent_[a] >= 0
              ? disc_->bin_of(static_cast<std::size_t>(parent_[a]),
                              d.row(i)[static_cast<std::size_t>(parent_[a])])
              : 0;
      counts[(b * pbins + pb) * 2 + static_cast<std::size_t>(d.label(i))] +=
          1.0;
    }
    double* lc = log_cond_.data() + cond_offsets_[a];
    for (std::size_t pb = 0; pb < pbins; ++pb) {
      for (std::size_t c = 0; c < 2; ++c) {
        double tot = 0.0;
        for (std::size_t b = 0; b < bins; ++b)
          tot += counts[(b * pbins + pb) * 2 + c];
        const double denom = tot + laplace_ * static_cast<double>(bins);
        for (std::size_t b = 0; b < bins; ++b)
          lc[(b * pbins + pb) * 2 + c] =
              std::log((counts[(b * pbins + pb) * 2 + c] + laplace_) /
                       denom);
      }
    }
  }
}

double Tan::predict_score(std::span<const double> x) const {
  if (!disc_) throw std::logic_error("Tan: not fitted");
  double lp[2] = {log_prior_[0], log_prior_[1]};
  const std::size_t dim = cond_offsets_.size() - 1;
  for (std::size_t a = 0; a < dim && a < x.size(); ++a) {
    const std::size_t b = disc_->bin_of(a, x[a]);
    const std::size_t pbins = parent_bins_[a];
    const std::size_t pb =
        parent_[a] >= 0
            ? disc_->bin_of(static_cast<std::size_t>(parent_[a]),
                            x[static_cast<std::size_t>(parent_[a])])
            : 0;
    const double* lc =
        log_cond_.data() + cond_offsets_[a] + (b * pbins + pb) * 2;
    lp[0] += lc[0];
    lp[1] += lc[1];
  }
  const double m = std::max(lp[0], lp[1]);
  const double e0 = std::exp(lp[0] - m);
  const double e1 = std::exp(lp[1] - m);
  return e1 / (e0 + e1);
}

// hpcap-lint: hot-path
void Tan::predict_score_many(const double* rows, std::size_t dim,
                             std::size_t count, double* out) const {
  if (!disc_) throw std::logic_error("Tan: not fitted");
  const std::size_t d = std::min(cond_offsets_.size() - 1, dim);
  static thread_local std::vector<std::uint32_t> bins;
  static thread_local std::vector<double> lp;
  bins.resize(count * d);
  lp.resize(count * 2);
  // Pass 1: discretize every cell once, column by column (cut range loads
  // once per attribute). The scalar path repeats the parent attribute's
  // binary search for every child that points at it; here each cell is
  // searched exactly once and reused.
  for (std::size_t a = 0; a < d; ++a) {
    const auto [first, last] = disc_->cut_range(a);
    for (std::size_t w = 0; w < count; ++w)
      bins[w * d + a] = static_cast<std::uint32_t>(
          std::upper_bound(first, last, rows[w * dim + a]) - first);
  }
  for (std::size_t w = 0; w < count; ++w) {
    lp[w * 2 + 0] = log_prior_[0];
    lp[w * 2 + 1] = log_prior_[1];
  }
  // Pass 2: accumulate log P(A_a = bin | parent_bin, C) in ascending
  // attribute order per row — the same addition sequence as the scalar
  // predict_score, hence bit-identical sums.
  for (std::size_t a = 0; a < d; ++a) {
    const std::size_t pbins = parent_bins_[a];
    const int pa = parent_[a];
    const double* table = log_cond_.data() + cond_offsets_[a];
    for (std::size_t w = 0; w < count; ++w) {
      const std::size_t b = bins[w * d + a];
      const std::size_t pb =
          (pa >= 0 && static_cast<std::size_t>(pa) < d)
              ? bins[w * d + static_cast<std::size_t>(pa)]
              : 0;
      const double* lc = table + (b * pbins + pb) * 2;
      lp[w * 2 + 0] += lc[0];
      lp[w * 2 + 1] += lc[1];
    }
  }
  for (std::size_t w = 0; w < count; ++w) {
    const double m = std::max(lp[w * 2], lp[w * 2 + 1]);
    const double e0 = std::exp(lp[w * 2] - m);
    const double e1 = std::exp(lp[w * 2 + 1] - m);
    out[w] = e1 / (e0 + e1);
  }
}

}  // namespace hpcap::ml
