// Model persistence.
//
// Trained models are what a deployment ships: synopses and coordinated
// tables are built offline from stress-test data and then loaded by the
// online monitor (the paper's measurement tool is exactly such a split).
// The format is a line-oriented, whitespace-separated text format with a
// magic header and per-section tags — diffable, versionable, and free of
// endianness concerns. Doubles round-trip exactly via hex floats.
//
// Entry points:
//   save_classifier(os, clf)          — any fitted Classifier
//   load_classifier(is)               — dispatches on the stored kind
// plus save/load member functions on Discretizer (used by the Bayesian
// learners' serializers).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>

#include "ml/classifier.h"

namespace hpcap::ml {

// Writes a fitted classifier. Throws std::invalid_argument for an
// unfitted classifier and std::runtime_error on stream failure.
void save_classifier(std::ostream& os, const Classifier& clf);

// Reads back any classifier written by save_classifier. Throws
// std::runtime_error on format violations.
std::unique_ptr<Classifier> load_classifier(std::istream& is);

namespace io {

// Shared low-level helpers (used by core-layer serializers too). All
// readers throw std::runtime_error on truncated, malformed or hostile
// input — counts are bounds-checked *before* any allocation they drive,
// so a corrupt stream cannot demand gigabytes.
void write_tag(std::ostream& os, const char* tag);
void expect_tag(std::istream& is, const char* tag);
void write_double(std::ostream& os, double v);
double read_double(std::istream& is);
void write_size(std::ostream& os, std::size_t v);
std::size_t read_size(std::istream& is);
// read_size with an upper bound; `what` names the field in the error.
std::size_t read_count(std::istream& is, std::size_t max, const char* what);
void write_string(std::ostream& os, const std::string& s);
std::string read_string(std::istream& is);

// Hard ceiling on any serialized string (names, tags). Far above anything
// the format writes, far below anything that could hurt.
inline constexpr std::size_t kMaxStringBytes = std::size_t{1} << 20;

}  // namespace io
}  // namespace hpcap::ml
