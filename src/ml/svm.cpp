#include "ml/svm.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/matrix.h"
#include "util/rng.h"
#include "util/stats.h"

namespace hpcap::ml {

double Svm::kernel(std::span<const double> a, std::span<const double> b) const {
  if (opts_.kernel == Kernel::kLinear) return dot(a, b);
  return std::exp(-gamma_ * squared_distance(a, b));
}

std::vector<double> Svm::standardize(std::span<const double> x) const {
  std::vector<double> out(mean_.size());
  for (std::size_t a = 0; a < mean_.size(); ++a) {
    const double v = a < x.size() ? x[a] : 0.0;
    out[a] = (v - mean_[a]) / scale_[a];
  }
  return out;
}

void Svm::fit(const DatasetView& d) {
  if (d.empty()) throw std::invalid_argument("Svm: empty data");
  const std::size_t n = d.size();
  const std::size_t p = d.dim();

  mean_.assign(p, 0.0);
  scale_.assign(p, 1.0);
  for (std::size_t a = 0; a < p; ++a) {
    RunningStats s;
    for (std::size_t i = 0; i < n; ++i) s.add(d.row(i)[a]);
    mean_[a] = s.mean();
    scale_[a] = s.stddev() > 1e-12 ? s.stddev() : 1.0;
  }

  std::vector<std::vector<double>> x(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = standardize(d.row(i));
    y[i] = d.label(i) == 1 ? 1.0 : -1.0;
  }

  gamma_ = opts_.gamma > 0.0
               ? opts_.gamma
               : 1.0 / static_cast<double>(std::max<std::size_t>(p, 1));

  // Kernel cache.
  Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j)
      k(i, j) = k(j, i) = kernel(x[i], x[j]);

  std::vector<double> alpha(n, 0.0);
  double b = 0.0;
  const double c = opts_.c;
  const double tol = opts_.tol;
  Rng rng(opts_.seed);

  auto f = [&](std::size_t i) {
    double s = b;
    for (std::size_t j = 0; j < n; ++j)
      if (alpha[j] != 0.0) s += alpha[j] * y[j] * k(i, j);
    return s;
  };

  int passes = 0;
  int iterations = 0;
  while (passes < opts_.max_passes && iterations < opts_.max_iterations) {
    int changed = 0;
    for (std::size_t i = 0; i < n && iterations < opts_.max_iterations;
         ++i, ++iterations) {
      const double e_i = f(i) - y[i];
      const bool violates = (y[i] * e_i < -tol && alpha[i] < c) ||
                            (y[i] * e_i > tol && alpha[i] > 0.0);
      if (!violates) continue;
      std::size_t j = rng.uniform_u64(n - 1);
      if (j >= i) ++j;
      const double e_j = f(j) - y[j];

      const double ai_old = alpha[i];
      const double aj_old = alpha[j];
      double lo, hi;
      if (y[i] != y[j]) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(c, c + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - c);
        hi = std::min(c, ai_old + aj_old);
      }
      if (lo >= hi) continue;
      const double eta = 2.0 * k(i, j) - k(i, i) - k(j, j);
      if (eta >= 0.0) continue;
      double aj = aj_old - y[j] * (e_i - e_j) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::abs(aj - aj_old) < 1e-6) continue;
      const double ai = ai_old + y[i] * y[j] * (aj_old - aj);
      alpha[i] = ai;
      alpha[j] = aj;

      const double b1 = b - e_i - y[i] * (ai - ai_old) * k(i, i) -
                        y[j] * (aj - aj_old) * k(i, j);
      const double b2 = b - e_j - y[i] * (ai - ai_old) * k(i, j) -
                        y[j] * (aj - aj_old) * k(j, j);
      if (ai > 0.0 && ai < c)
        b = b1;
      else if (aj > 0.0 && aj < c)
        b = b2;
      else
        b = 0.5 * (b1 + b2);
      ++changed;
    }
    passes = changed == 0 ? passes + 1 : 0;
  }

  // Keep only support vectors.
  sv_x_.clear();
  alpha_y_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha[i] > 1e-9) {
      sv_x_.push_back(std::move(x[i]));
      alpha_y_.push_back(alpha[i] * y[i]);
    }
  }
  b_ = b;
  fitted_ = true;
}

double Svm::decision(std::span<const double> x_std) const {
  double s = b_;
  for (std::size_t i = 0; i < sv_x_.size(); ++i)
    s += alpha_y_[i] * kernel(sv_x_[i], x_std);
  return s;
}

double Svm::predict_score(std::span<const double> x) const {
  if (!fitted_) throw std::logic_error("Svm: not fitted");
  const std::vector<double> xs = standardize(x);
  // Logistic squashing of the margin gives a usable [0,1] score.
  return 1.0 / (1.0 + std::exp(-2.0 * decision(xs)));
}

std::size_t Svm::support_vector_count() const noexcept {
  return sv_x_.size();
}

}  // namespace hpcap::ml
