#include "ml/svm.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>

#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"

namespace hpcap::ml {

namespace {

constexpr std::size_t kNoSlot = std::numeric_limits<std::size_t>::max();

// Kernel rows on demand with a capped LRU replacement policy, for
// training sets too large for the dense n×n matrix. Misses cost O(n·d);
// eviction scans the (small) slot table, which is noise next to a miss.
// Pointer stability: a row() result stays valid across one subsequent
// row() call (capacity >= 2 and the previous row is the most recently
// used, so it is evicted last) — exactly the i-then-j access pattern of
// an SMO pair update.
class KernelRowCache {
 public:
  template <typename KernelFn>
  KernelRowCache(std::size_t n, std::size_t capacity, KernelFn&& fill)
      : n_(n),
        capacity_(std::max<std::size_t>(capacity, 2)),
        fill_(std::forward<KernelFn>(fill)),
        buf_(std::min(capacity_, n) * n),
        owner_(std::min(capacity_, n), kNoSlot),
        stamp_(std::min(capacity_, n), 0),
        slot_of_(n, kNoSlot) {}

  const double* row(std::size_t i) {
    ++tick_;
    std::size_t slot = slot_of_[i];
    if (slot == kNoSlot) {
      slot = victim();
      if (owner_[slot] != kNoSlot) slot_of_[owner_[slot]] = kNoSlot;
      owner_[slot] = i;
      slot_of_[i] = slot;
      fill_(i, buf_.data() + slot * n_);
      ++misses_;
    }
    stamp_[slot] = tick_;
    return buf_.data() + slot * n_;
  }

  std::size_t misses() const noexcept { return misses_; }

 private:
  std::size_t victim() const {
    std::size_t best = 0;
    for (std::size_t s = 1; s < owner_.size(); ++s) {
      if (owner_[s] == kNoSlot) return s;
      if (stamp_[s] < stamp_[best]) best = s;
    }
    return best;
  }

  std::size_t n_;
  std::size_t capacity_;
  std::function<void(std::size_t, double*)> fill_;
  std::vector<double> buf_;
  std::vector<std::size_t> owner_;   // slot -> row index
  std::vector<std::uint64_t> stamp_;  // slot -> last-use tick
  std::vector<std::size_t> slot_of_;  // row index -> slot
  std::uint64_t tick_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace

double Svm::kernel_raw(const double* a, const double* b,
                       std::size_t p) const noexcept {
  if (opts_.kernel == Kernel::kLinear) {
    double s = 0.0;
    for (std::size_t t = 0; t < p; ++t) s += a[t] * b[t];
    return s;
  }
  double sq = 0.0;
  for (std::size_t t = 0; t < p; ++t) {
    const double dv = a[t] - b[t];
    sq += dv * dv;
  }
  return std::exp(-gamma_ * sq);
}

void Svm::standardize_into(std::span<const double> x,
                           std::vector<double>& out) const {
  out.resize(mean_.size());
  for (std::size_t a = 0; a < mean_.size(); ++a) {
    // A short row is missing trailing attributes; impute the training
    // mean, which standardizes to the neutral 0 (raw 0.0 would smuggle in
    // -mean/scale, a spurious extreme value).
    const double v = a < x.size() ? x[a] : mean_[a];
    out[a] = (v - mean_[a]) / scale_[a];
  }
}

void Svm::fit(const DatasetView& d) {
  if (d.empty()) throw std::invalid_argument("Svm: empty data");
  const std::size_t n = d.size();
  const std::size_t p = d.dim();
  dim_ = p;
  audit_divergence_ = 0.0;

  mean_.assign(p, 0.0);
  scale_.assign(p, 1.0);
  for (std::size_t a = 0; a < p; ++a) {
    RunningStats s;
    for (std::size_t i = 0; i < n; ++i) s.add(d.row(i)[a]);
    mean_[a] = s.mean();
    scale_[a] = s.stddev() > 1e-12 ? s.stddev() : 1.0;
  }

  // Standardized training rows in one flat row-major block.
  std::vector<double> x(n * p);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = d.row(i);
    double* out = x.data() + i * p;
    for (std::size_t a = 0; a < p; ++a)
      out[a] = (row[a] - mean_[a]) / scale_[a];
    y[i] = d.label(i) == 1 ? 1.0 : -1.0;
  }

  gamma_ = opts_.gamma > 0.0
               ? opts_.gamma
               : 1.0 / static_cast<double>(std::max<std::size_t>(p, 1));

  const auto xrow = [&x, p](std::size_t i) { return x.data() + i * p; };

  // Diagonal is always materialized (eta needs it on every update).
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i)
    diag[i] = kernel_raw(xrow(i), xrow(i), p);

  // Kernel storage: dense symmetric fill for ordinary synopsis-sized sets,
  // LRU row cache beyond dense_kernel_limit.
  const bool dense = n <= opts_.dense_kernel_limit;
  std::vector<double> kmat;
  std::unique_ptr<KernelRowCache> kcache;
  if (dense) {
    kmat.resize(n * n);
    // Row bands over the upper triangle; each entry is a pure function of
    // its row pair, so the fill is identical at every thread count. The
    // grain keeps small fits inline (no pool traffic).
    const double ns_per_row =
        0.5 * static_cast<double>(n) *
        (2.0 * static_cast<double>(p) +
         (opts_.kernel == Kernel::kRbf ? 12.0 : 2.0));
    util::parallel_for_chunked(
        n, util::grain_for_cost(n, ns_per_row),
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            double* out = kmat.data() + i * n;
            out[i] = diag[i];
            for (std::size_t j = i + 1; j < n; ++j)
              out[j] = kernel_raw(xrow(i), xrow(j), p);
          }
        });
    // Mirror the triangle so every row is contiguous for the E updates.
    for (std::size_t i = 1; i < n; ++i)
      for (std::size_t j = 0; j < i; ++j) kmat[i * n + j] = kmat[j * n + i];
  } else {
    std::size_t cap = opts_.kernel_cache_rows;
    if (cap == 0)
      cap = std::max<std::size_t>(
          64, opts_.dense_kernel_limit * opts_.dense_kernel_limit / n);
    kcache = std::make_unique<KernelRowCache>(
        n, std::min(cap, n), [&, this](std::size_t i, double* out) {
          const double* xi = xrow(i);
          for (std::size_t k = 0; k < n; ++k)
            out[k] = kernel_raw(xi, xrow(k), p);
        });
  }
  const auto krow = [&](std::size_t i) -> const double* {
    return dense ? kmat.data() + i * n : kcache->row(i);
  };

  std::vector<double> alpha(n, 0.0);
  double b = 0.0;
  const double c = opts_.c;
  const double tol = opts_.tol;
  Rng rng(opts_.seed);

  // Error cache: E[i] = f(i) - y[i]. With all alphas 0 and b 0, f == 0.
  std::vector<double> e(n);
  for (std::size_t i = 0; i < n; ++i) e[i] = -y[i];

  // Independent full recomputation of f(k) - y[k], for the audit hook.
  const auto audit = [&] {
    for (std::size_t k = 0; k < n; ++k) {
      double f = b;
      for (std::size_t m = 0; m < n; ++m)
        if (alpha[m] != 0.0)
          f += alpha[m] * y[m] * kernel_raw(xrow(m), xrow(k), p);
      audit_divergence_ =
          std::max(audit_divergence_, std::abs(e[k] - (f - y[k])));
    }
  };

  // One SMO pair update; returns false when the pair cannot make
  // progress (clipped window empty, non-negative curvature, step below
  // threshold).
  const auto try_update = [&](std::size_t i, std::size_t j) {
    if (i == j) return false;
    const double e_i = e[i];
    const double e_j = e[j];
    const double ai_old = alpha[i];
    const double aj_old = alpha[j];
    double lo, hi;
    if (y[i] != y[j]) {
      lo = std::max(0.0, aj_old - ai_old);
      hi = std::min(c, c + aj_old - ai_old);
    } else {
      lo = std::max(0.0, ai_old + aj_old - c);
      hi = std::min(c, ai_old + aj_old);
    }
    if (lo >= hi) return false;
    const double* row_i = krow(i);
    const double k_ij = row_i[j];
    const double eta = 2.0 * k_ij - diag[i] - diag[j];
    if (eta >= 0.0) return false;
    double aj = aj_old - y[j] * (e_i - e_j) / eta;
    aj = std::clamp(aj, lo, hi);
    if (std::abs(aj - aj_old) < 1e-6) return false;
    const double ai = ai_old + y[i] * y[j] * (aj_old - aj);
    alpha[i] = ai;
    alpha[j] = aj;

    const double dai = ai - ai_old;
    const double daj = aj - aj_old;
    const double b1 =
        b - e_i - y[i] * dai * diag[i] - y[j] * daj * k_ij;
    const double b2 =
        b - e_j - y[i] * dai * k_ij - y[j] * daj * diag[j];
    double b_new;
    if (ai > 0.0 && ai < c)
      b_new = b1;
    else if (aj > 0.0 && aj < c)
      b_new = b2;
    else
      b_new = 0.5 * (b1 + b2);
    const double db = b_new - b;
    b = b_new;

    // Fold the two rank-one kernel contributions and the bias shift into
    // the cache: O(n) instead of recomputing any f from scratch. row_i
    // stays valid across the row(j) fetch (see KernelRowCache).
    const double wi = y[i] * dai;
    const double wj = y[j] * daj;
    const double* row_j = krow(j);
    for (std::size_t k = 0; k < n; ++k)
      e[k] += wi * row_i[k] + wj * row_j[k] + db;

    if (opts_.audit_error_cache) audit();
    return true;
  };

  int passes = 0;
  int iterations = 0;
  while (passes < opts_.max_passes && iterations < opts_.max_iterations) {
    int changed = 0;
    for (std::size_t i = 0; i < n && iterations < opts_.max_iterations;
         ++i, ++iterations) {
      const double e_i = e[i];
      const bool violates = (y[i] * e_i < -tol && alpha[i] < c) ||
                            (y[i] * e_i > tol && alpha[i] > 0.0);
      if (!violates) continue;

      // Working-set heuristic: the partner with the largest |E_i - E_j|
      // promises the largest step along the constraint. Ties break to the
      // lowest index, keeping the scan deterministic.
      std::size_t best_j = i;
      double best_gap = -1.0;
      for (std::size_t k = 0; k < n; ++k) {
        if (k == i) continue;
        const double gap = std::abs(e_i - e[k]);
        if (gap > best_gap) {
          best_gap = gap;
          best_j = k;
        }
      }
      if (best_j != i && try_update(i, best_j)) {
        ++changed;
        continue;
      }
      // The heuristic partner was unable to move (clipped or flat
      // curvature): fall back to seeded random partners, as simplified
      // SMO would.
      for (int attempt = 0; attempt < 2; ++attempt) {
        std::size_t j = rng.uniform_u64(n - 1);
        if (j >= i) ++j;
        if (j != best_j && try_update(i, j)) {
          ++changed;
          break;
        }
      }
    }
    passes = changed == 0 ? passes + 1 : 0;
  }

  // Keep only support vectors, packed flat.
  sv_x_.clear();
  alpha_y_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha[i] > 1e-9) {
      const double* xi = xrow(i);
      sv_x_.insert(sv_x_.end(), xi, xi + p);
      alpha_y_.push_back(alpha[i] * y[i]);
    }
  }
  b_ = b;
  fitted_ = true;
}

double Svm::decision(const double* x_std) const noexcept {
  double s = b_;
  const double* sv = sv_x_.data();
  for (std::size_t i = 0; i < alpha_y_.size(); ++i, sv += dim_)
    s += alpha_y_[i] * kernel_raw(sv, x_std, dim_);
  return s;
}

double Svm::predict_score(std::span<const double> x) const {
  if (!fitted_) throw std::logic_error("Svm: not fitted");
  // Reused scratch: the online observe path calls this every interval and
  // must not allocate (after the buffer's first growth).
  thread_local std::vector<double> xs;
  standardize_into(x, xs);
  // Logistic squashing of the margin gives a usable [0,1] score.
  return 1.0 / (1.0 + std::exp(-2.0 * decision(xs.data())));
}

// hpcap-lint: hot-path
void Svm::predict_score_many(const double* rows, std::size_t dim,
                             std::size_t count, double* out) const {
  if (!fitted_) throw std::logic_error("Svm: not fitted");
  static thread_local std::vector<double> xs;
  static thread_local std::vector<double> acc;
  xs.resize(count * dim_);
  acc.resize(count);
  // Standardize the whole block up front (same per-element math as
  // standardize_into, including mean imputation for short rows).
  for (std::size_t w = 0; w < count; ++w) {
    double* xw = xs.data() + w * dim_;
    const double* rw = rows + w * dim;
    for (std::size_t a = 0; a < dim_; ++a) {
      const double v = a < dim ? rw[a] : mean_[a];
      xw[a] = (v - mean_[a]) / scale_[a];
    }
  }
  for (std::size_t w = 0; w < count; ++w) acc[w] = b_;
  // Blocked SV walk: each block of support vectors stays hot in cache
  // while it is applied to every window. Within a row the additions still
  // happen in ascending SV index order (acc[w] carries across blocks), so
  // the decision value is the same FP sum as the scalar path.
  constexpr std::size_t kSvBlock = 32;
  const std::size_t nsv = alpha_y_.size();
  for (std::size_t i0 = 0; i0 < nsv; i0 += kSvBlock) {
    const std::size_t i1 = std::min(i0 + kSvBlock, nsv);
    for (std::size_t w = 0; w < count; ++w) {
      const double* xw = xs.data() + w * dim_;
      double s = acc[w];
      const double* sv = sv_x_.data() + i0 * dim_;
      for (std::size_t i = i0; i < i1; ++i, sv += dim_)
        s += alpha_y_[i] * kernel_raw(sv, xw, dim_);
      acc[w] = s;
    }
  }
  for (std::size_t w = 0; w < count; ++w)
    out[w] = 1.0 / (1.0 + std::exp(-2.0 * acc[w]));
}

std::size_t Svm::support_vector_count() const noexcept {
  return alpha_y_.size();
}

}  // namespace hpcap::ml
