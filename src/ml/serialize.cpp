#include "ml/serialize.h"

#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "ml/discretize.h"
#include "ml/linreg.h"
#include "ml/naive_bayes.h"
#include "ml/svm.h"
#include "ml/tan.h"

namespace hpcap::ml {
namespace io {

void write_tag(std::ostream& os, const char* tag) { os << tag << ' '; }

void expect_tag(std::istream& is, const char* tag) {
  std::string got;
  if (!(is >> got) || got != tag)
    throw std::runtime_error(std::string("model load: expected tag '") +
                             tag + "', got '" + got + "'");
}

void write_double(std::ostream& os, double v) {
  // Hex floats round-trip exactly.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%a", v);
  os << buf << ' ';
}

double read_double(std::istream& is) {
  std::string tok;
  if (!(is >> tok)) throw std::runtime_error("model load: missing double");
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0')
    throw std::runtime_error("model load: bad double '" + tok + "'");
  return v;
}

void write_size(std::ostream& os, std::size_t v) { os << v << ' '; }

std::size_t read_size(std::istream& is) {
  // Parse through a signed token first: istream extraction into an
  // unsigned type happily wraps "-1" to SIZE_MAX, which turns a one-byte
  // corruption into a multi-gigabyte resize downstream.
  std::string tok;
  if (!(is >> tok)) throw std::runtime_error("model load: missing size");
  char* end = nullptr;
  const long long v = std::strtoll(tok.c_str(), &end, 10);
  if (end == tok.c_str() || *end != '\0' || v < 0)
    throw std::runtime_error("model load: bad size '" + tok + "'");
  return static_cast<std::size_t>(v);
}

std::size_t read_count(std::istream& is, std::size_t max, const char* what) {
  const std::size_t v = read_size(is);
  if (v > max)
    throw std::runtime_error("model load: " + std::string(what) + " count " +
                             std::to_string(v) + " exceeds limit " +
                             std::to_string(max));
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  os << s.size() << ' ' << s << ' ';
}

std::string read_string(std::istream& is) {
  const std::size_t n = read_count(is, kMaxStringBytes, "string byte");
  is.get();  // the single separator after the length
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  if (!is) throw std::runtime_error("model load: truncated string");
  return s;
}

namespace {
// Structural ceilings for the hostile-input checks below. Real models are
// orders of magnitude smaller (dozens of attributes, a few thousand
// support vectors); these only exist so a corrupt count fails cleanly
// instead of driving an absurd allocation.
constexpr std::size_t kMaxAttributes = 1 << 12;
constexpr std::size_t kMaxVectorElems = 1 << 20;

void write_vector(std::ostream& os, const std::vector<double>& v) {
  write_size(os, v.size());
  for (double x : v) write_double(os, x);
}

std::vector<double> read_vector(std::istream& is) {
  std::vector<double> v(read_count(is, kMaxVectorElems, "vector element"));
  for (double& x : v) x = read_double(is);
  return v;
}
}  // namespace

}  // namespace io

using namespace io;

// --- Discretizer --------------------------------------------------------

void Discretizer::save(std::ostream& os) const {
  write_tag(os, "disc");
  write_size(os, dim());
  for (std::size_t a = 0; a < dim(); ++a) {
    write_size(os, offsets_[a + 1] - offsets_[a]);
    for (std::size_t k = offsets_[a]; k < offsets_[a + 1]; ++k)
      write_double(os, cuts_[k]);
  }
}

Discretizer Discretizer::load(std::istream& is) {
  expect_tag(is, "disc");
  std::vector<std::vector<double>> cuts(
      read_count(is, kMaxAttributes, "discretizer attribute"));
  for (auto& c : cuts) {
    c.resize(read_count(is, kMaxVectorElems, "discretizer cut"));
    for (double& v : c) v = read_double(is);
  }
  return Discretizer(cuts);
}

// --- LinearRegression ---------------------------------------------------

void LinearRegression::save(std::ostream& os) const {
  if (!fitted_) throw std::invalid_argument("LR save: not fitted");
  write_tag(os, "lr");
  write_double(os, ridge_);
  write_vector(os, mean_);
  write_vector(os, scale_);
  write_vector(os, w_);
  write_double(os, b_);
}

LinearRegression LinearRegression::load(std::istream& is) {
  expect_tag(is, "lr");
  LinearRegression out(read_double(is));
  out.mean_ = read_vector(is);
  out.scale_ = read_vector(is);
  out.w_ = read_vector(is);
  out.b_ = read_double(is);
  out.fitted_ = true;
  return out;
}

// --- NaiveBayes ---------------------------------------------------------

void NaiveBayes::save(std::ostream& os) const {
  if (!disc_) throw std::invalid_argument("NaiveBayes save: not fitted");
  write_tag(os, "naive");
  write_double(os, laplace_);
  disc_->save(os);
  write_double(os, log_prior_[0]);
  write_double(os, log_prior_[1]);
  // Per-attribute tables on disk (format v1); in memory they are one flat
  // block sliced by cond_offsets_.
  write_size(os, cond_offsets_.size() - 1);
  for (std::size_t a = 0; a + 1 < cond_offsets_.size(); ++a) {
    write_size(os, cond_offsets_[a + 1] - cond_offsets_[a]);
    for (std::size_t k = cond_offsets_[a]; k < cond_offsets_[a + 1]; ++k)
      write_double(os, log_cond_[k]);
  }
}

NaiveBayes NaiveBayes::load(std::istream& is) {
  expect_tag(is, "naive");
  NaiveBayes out(read_double(is));
  out.disc_ = Discretizer::load(is);
  out.log_prior_[0] = read_double(is);
  out.log_prior_[1] = read_double(is);
  const std::size_t attrs = read_count(is, kMaxAttributes, "naive attribute");
  out.cond_offsets_.assign(attrs + 1, 0);
  for (std::size_t a = 0; a < attrs; ++a) {
    const std::vector<double> t = read_vector(is);
    out.log_cond_.insert(out.log_cond_.end(), t.begin(), t.end());
    out.cond_offsets_[a + 1] = out.log_cond_.size();
  }
  return out;
}

// --- TAN ----------------------------------------------------------------

void Tan::save(std::ostream& os) const {
  if (!disc_) throw std::invalid_argument("Tan save: not fitted");
  write_tag(os, "tan");
  write_double(os, laplace_);
  disc_->save(os);
  write_size(os, parent_.size());
  for (int p : parent_) os << p << ' ';
  write_double(os, log_prior_[0]);
  write_double(os, log_prior_[1]);
  // Per-attribute tables on disk (format v1); in memory they are one flat
  // block sliced by cond_offsets_.
  write_size(os, cond_offsets_.size() - 1);
  for (std::size_t a = 0; a + 1 < cond_offsets_.size(); ++a) {
    write_size(os, cond_offsets_[a + 1] - cond_offsets_[a]);
    for (std::size_t k = cond_offsets_[a]; k < cond_offsets_[a + 1]; ++k)
      write_double(os, log_cond_[k]);
  }
  write_size(os, parent_bins_.size());
  for (std::size_t b : parent_bins_) write_size(os, b);
}

Tan Tan::load(std::istream& is) {
  expect_tag(is, "tan");
  Tan out(read_double(is));
  out.disc_ = Discretizer::load(is);
  out.parent_.resize(read_count(is, kMaxAttributes, "tan parent"));
  for (int& p : out.parent_)
    if (!(is >> p)) throw std::runtime_error("tan load: parents");
  out.log_prior_[0] = read_double(is);
  out.log_prior_[1] = read_double(is);
  const std::size_t attrs = read_count(is, kMaxAttributes, "tan attribute");
  out.cond_offsets_.assign(attrs + 1, 0);
  for (std::size_t a = 0; a < attrs; ++a) {
    const std::vector<double> t = read_vector(is);
    out.log_cond_.insert(out.log_cond_.end(), t.begin(), t.end());
    out.cond_offsets_[a + 1] = out.log_cond_.size();
  }
  out.parent_bins_.resize(read_count(is, kMaxAttributes, "tan parent bin"));
  for (auto& b : out.parent_bins_) b = read_size(is);
  return out;
}

// --- SVM ----------------------------------------------------------------

void Svm::save(std::ostream& os) const {
  if (!fitted_) throw std::invalid_argument("Svm save: not fitted");
  write_tag(os, "svm");
  write_size(os, opts_.kernel == Kernel::kRbf ? 1 : 0);
  write_double(os, opts_.c);
  write_double(os, gamma_);
  write_vector(os, mean_);
  write_vector(os, scale_);
  // On-disk format is unchanged (one vector per support vector); the
  // in-memory layout is a flat dim_-strided block.
  write_size(os, alpha_y_.size());
  for (std::size_t i = 0; i < alpha_y_.size(); ++i) {
    write_size(os, dim_);
    for (std::size_t a = 0; a < dim_; ++a)
      write_double(os, sv_x_[i * dim_ + a]);
  }
  write_vector(os, alpha_y_);
  write_double(os, b_);
}

Svm Svm::load(std::istream& is) {
  expect_tag(is, "svm");
  Options opts;
  opts.kernel = read_size(is) == 1 ? Kernel::kRbf : Kernel::kLinear;
  opts.c = read_double(is);
  Svm out(opts);
  out.gamma_ = read_double(is);
  out.mean_ = read_vector(is);
  out.scale_ = read_vector(is);
  out.dim_ = out.mean_.size();
  const std::size_t svs = read_count(is, kMaxVectorElems, "support vector");
  // Bound the svs*dim product before reserving: both factors pass the
  // per-count cap, but a hostile pair can still multiply out to terabytes.
  if (out.dim_ != 0 && svs > kMaxVectorElems / out.dim_)
    throw std::runtime_error(
        "model load: support-vector matrix " + std::to_string(svs) + "x" +
        std::to_string(out.dim_) + " exceeds limit " +
        std::to_string(kMaxVectorElems));
  out.sv_x_.reserve(svs * out.dim_);
  for (std::size_t i = 0; i < svs; ++i) {
    const std::vector<double> sv = read_vector(is);
    if (sv.size() != out.dim_)
      throw std::runtime_error("svm load: support-vector width");
    out.sv_x_.insert(out.sv_x_.end(), sv.begin(), sv.end());
  }
  out.alpha_y_ = read_vector(is);
  out.b_ = read_double(is);
  out.fitted_ = true;
  return out;
}

// --- dispatch -----------------------------------------------------------

void save_classifier(std::ostream& os, const Classifier& clf) {
  if (!clf.fitted())
    throw std::invalid_argument("save_classifier: classifier not fitted");
  write_tag(os, "hpcap-classifier");
  write_tag(os, "v1");
  write_string(os, clf.name());
  if (const auto* lr = dynamic_cast<const LinearRegression*>(&clf))
    lr->save(os);
  else if (const auto* nb = dynamic_cast<const NaiveBayes*>(&clf))
    nb->save(os);
  else if (const auto* tan = dynamic_cast<const Tan*>(&clf))
    tan->save(os);
  else if (const auto* svm = dynamic_cast<const Svm*>(&clf))
    svm->save(os);
  else
    throw std::invalid_argument("save_classifier: unknown classifier type");
  if (!os) throw std::runtime_error("save_classifier: stream failure");
}

std::unique_ptr<Classifier> load_classifier(std::istream& is) {
  expect_tag(is, "hpcap-classifier");
  expect_tag(is, "v1");
  const std::string kind = read_string(is);
  if (kind == "LR")
    return std::make_unique<LinearRegression>(LinearRegression::load(is));
  if (kind == "Naive")
    return std::make_unique<NaiveBayes>(NaiveBayes::load(is));
  if (kind == "TAN") return std::make_unique<Tan>(Tan::load(is));
  if (kind == "SVM") return std::make_unique<Svm>(Svm::load(is));
  throw std::runtime_error("load_classifier: unknown kind '" + kind + "'");
}

}  // namespace hpcap::ml
