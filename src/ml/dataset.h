// Training/testing data for synopsis construction.
//
// An instance is the paper's u* = (a1, ..., an, c): one row of low-level
// metric averages over a sampling window plus the binary system state
// (0 = underload, 1 = overload). A Dataset is a bag of instances sharing
// an attribute catalog.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace hpcap::ml {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> attribute_names)
      : names_(std::move(attribute_names)) {}

  void add(std::vector<double> x, int y);

  std::size_t size() const noexcept { return x_.size(); }
  std::size_t dim() const noexcept { return names_.size(); }
  bool empty() const noexcept { return x_.empty(); }

  std::span<const double> row(std::size_t i) const { return x_[i]; }
  int label(std::size_t i) const { return y_[i]; }
  const std::vector<int>& labels() const noexcept { return y_; }
  const std::vector<std::string>& attribute_names() const noexcept {
    return names_;
  }

  std::size_t positives() const noexcept;
  std::size_t negatives() const noexcept { return size() - positives(); }
  // Fraction of instances labeled overloaded.
  double positive_rate() const noexcept;

  // All values of one attribute column.
  std::vector<double> column(std::size_t attr) const;

  // New dataset containing only the given attribute columns (in order).
  Dataset project(const std::vector<std::size_t>& attrs) const;

  // New dataset containing the given rows.
  Dataset subset(const std::vector<std::size_t>& rows) const;

  // Merges another dataset with identical attribute names.
  void append(const Dataset& other);

  // Stratified k-fold split: returns k disjoint row-index sets, each with
  // (approximately) the full set's class balance, in shuffled order.
  std::vector<std::vector<std::size_t>> stratified_folds(int k,
                                                         Rng& rng) const;

  // Random stratified train/test split; `train_fraction` of each class
  // goes to the first dataset.
  std::pair<Dataset, Dataset> stratified_split(double train_fraction,
                                               Rng& rng) const;

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<double>> x_;
  std::vector<int> y_;
};

}  // namespace hpcap::ml
