// Training/testing data for synopsis construction.
//
// An instance is the paper's u* = (a1, ..., an, c): one row of low-level
// metric averages over a sampling window plus the binary system state
// (0 = underload, 1 = overload). A Dataset is a bag of instances sharing
// an attribute catalog.
//
// Storage is flat row-major: one contiguous std::vector<double> with a
// dim() stride, so a row is a std::span into the block, a full copy is a
// single allocation, and fitting loops stream cache-linearly instead of
// chasing one heap allocation per row. DatasetView adds zero-copy
// row-index indirection on top — cross-validation folds evaluate through
// views and never materialize per-fold copies.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace hpcap::ml {

class DatasetView;

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> attribute_names)
      : names_(std::move(attribute_names)) {}

  void add(std::vector<double> x, int y);
  // Same, from a borrowed row (no intermediate vector).
  void add_row(std::span<const double> x, int y);
  // Pre-sizes the flat block for `rows` additional instances.
  void reserve(std::size_t rows);

  std::size_t size() const noexcept { return y_.size(); }
  std::size_t dim() const noexcept { return names_.size(); }
  bool empty() const noexcept { return y_.empty(); }

  std::span<const double> row(std::size_t i) const {
    return {data_.data() + i * dim(), dim()};
  }
  int label(std::size_t i) const { return y_[i]; }
  const std::vector<int>& labels() const noexcept { return y_; }
  const std::vector<std::string>& attribute_names() const noexcept {
    return names_;
  }

  std::size_t positives() const noexcept;
  std::size_t negatives() const noexcept { return size() - positives(); }
  // Fraction of instances labeled overloaded.
  double positive_rate() const noexcept;

  // All values of one attribute column.
  std::vector<double> column(std::size_t attr) const;

  // New dataset containing only the given attribute columns (in order).
  // Single allocation for the value block.
  Dataset project(const std::vector<std::size_t>& attrs) const;

  // New dataset containing the given rows. Single allocation for the
  // value block. Prefer DatasetView when a copy is not required.
  Dataset subset(const std::vector<std::size_t>& rows) const;

  // Merges another dataset with identical attribute names.
  void append(const Dataset& other);

  // Stratified k-fold split: returns k disjoint row-index sets, each with
  // (approximately) the full set's class balance, in shuffled order.
  std::vector<std::vector<std::size_t>> stratified_folds(int k,
                                                         Rng& rng) const;

  // Random stratified train/test split; `train_fraction` of each class
  // goes to the first dataset.
  std::pair<Dataset, Dataset> stratified_split(double train_fraction,
                                               Rng& rng) const;

 private:
  std::vector<std::string> names_;
  std::vector<double> data_;  // row-major, stride dim()
  std::vector<int> y_;
};

// Zero-copy read-only row selection over a Dataset. A view is either the
// identity (every row, no index vector, what a `const Dataset&` converts
// to) or an explicit row-index list (what cross-validation folds use).
// Rows keep the base dataset's full attribute layout; a view never owns
// data, so the base Dataset must outlive it.
class DatasetView {
 public:
  // Identity view of the whole dataset. Intentionally implicit: every
  // read-only consumer (Classifier::fit, Discretizer, info-gain, ...)
  // takes a DatasetView, and Datasets convert for free.
  DatasetView(const Dataset& base) : base_(&base) {}  // NOLINT

  // View of the given base-dataset rows, in the given order.
  DatasetView(const Dataset& base, std::vector<std::size_t> rows);

  std::size_t size() const noexcept {
    return all_ ? base_->size() : rows_.size();
  }
  std::size_t dim() const noexcept { return base_->dim(); }
  bool empty() const noexcept { return size() == 0; }

  std::span<const double> row(std::size_t i) const {
    return base_->row(index_of(i));
  }
  int label(std::size_t i) const { return base_->label(index_of(i)); }
  const std::vector<std::string>& attribute_names() const noexcept {
    return base_->attribute_names();
  }

  std::size_t positives() const noexcept;
  std::size_t negatives() const noexcept { return size() - positives(); }
  double positive_rate() const noexcept;

  std::vector<double> column(std::size_t attr) const;

  // Sub-view: `rows` are indices into *this* view; the result indexes the
  // same base dataset (views never stack indirections).
  DatasetView select(const std::vector<std::size_t>& rows) const;

  // Same contract as Dataset::stratified_folds, over view rows.
  std::vector<std::vector<std::size_t>> stratified_folds(int k,
                                                         Rng& rng) const;

  // Deep copy into a standalone Dataset (single allocation).
  Dataset materialize() const;

  const Dataset& base() const noexcept { return *base_; }

 private:
  std::size_t index_of(std::size_t i) const noexcept {
    return all_ ? i : rows_[i];
  }

  const Dataset* base_;
  std::vector<std::size_t> rows_;  // unused when all_
  bool all_ = true;
};

}  // namespace hpcap::ml
