#include "ml/discretize.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace hpcap::ml {

namespace {

// Class-count entropy (bits) of a labeled range.
double entropy2(std::size_t n0, std::size_t n1) {
  const std::size_t n = n0 + n1;
  if (n == 0) return 0.0;
  double h = 0.0;
  for (std::size_t c : {n0, n1}) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(n);
    h -= p * std::log2(p);
  }
  return h;
}

std::size_t distinct_classes(std::size_t n0, std::size_t n1) {
  return static_cast<std::size_t>(n0 > 0) + static_cast<std::size_t>(n1 > 0);
}

// Recursive Fayyad–Irani split of values[lo, hi) (sorted by value).
// Emits accepted cut points into `cuts`.
void mdl_split(const std::vector<std::pair<double, int>>& values,
               std::size_t lo, std::size_t hi, std::vector<double>& cuts,
               int depth) {
  if (depth > 16) return;  // defensive: data this size never recurses deep
  const std::size_t n = hi - lo;
  if (n < 4) return;

  // Totals for the range.
  std::size_t tot0 = 0, tot1 = 0;
  for (std::size_t i = lo; i < hi; ++i)
    (values[i].second == 1 ? tot1 : tot0)++;
  const double h_all = entropy2(tot0, tot1);
  if (h_all == 0.0) return;  // pure

  // Scan boundary candidates (between distinct values) for the split that
  // minimizes weighted child entropy.
  std::size_t best_i = 0;
  double best_we = 1e300;
  std::size_t best_l0 = 0, best_l1 = 0;
  std::size_t l0 = 0, l1 = 0;
  for (std::size_t i = lo; i + 1 < hi; ++i) {
    (values[i].second == 1 ? l1 : l0)++;
    if (values[i].first == values[i + 1].first) continue;
    const std::size_t r0 = tot0 - l0, r1 = tot1 - l1;
    const auto nl = static_cast<double>(l0 + l1);
    const auto nr = static_cast<double>(r0 + r1);
    const double we =
        (nl * entropy2(l0, l1) + nr * entropy2(r0, r1)) /
        static_cast<double>(n);
    if (we < best_we) {
      best_we = we;
      best_i = i;
      best_l0 = l0;
      best_l1 = l1;
    }
  }
  if (best_we >= 1e300) return;  // all values identical

  // MDL acceptance criterion (Fayyad & Irani 1993).
  const double gain = h_all - best_we;
  const std::size_t r0 = tot0 - best_l0, r1 = tot1 - best_l1;
  const auto k = static_cast<double>(distinct_classes(tot0, tot1));
  const auto k1 = static_cast<double>(distinct_classes(best_l0, best_l1));
  const auto k2 = static_cast<double>(distinct_classes(r0, r1));
  const double h_l = entropy2(best_l0, best_l1);
  const double h_r = entropy2(r0, r1);
  const double delta = std::log2(std::pow(3.0, k) - 2.0) -
                       (k * h_all - k1 * h_l - k2 * h_r);
  const double threshold =
      (std::log2(static_cast<double>(n) - 1.0) + delta) /
      static_cast<double>(n);
  if (gain <= threshold) return;

  const double cut =
      0.5 * (values[best_i].first + values[best_i + 1].first);
  cuts.push_back(cut);
  mdl_split(values, lo, best_i + 1, cuts, depth + 1);
  mdl_split(values, best_i + 1, hi, cuts, depth + 1);
}

}  // namespace

Discretizer Discretizer::equal_frequency(const DatasetView& d, int bins) {
  std::vector<std::vector<double>> cuts(d.dim());
  if (bins < 2 || d.empty()) return Discretizer(cuts);
  for (std::size_t a = 0; a < d.dim(); ++a) {
    std::vector<double> col = d.column(a);
    std::sort(col.begin(), col.end());
    std::vector<double>& c = cuts[a];
    for (int b = 1; b < bins; ++b) {
      const auto pos = static_cast<std::size_t>(
          static_cast<double>(col.size()) * b / bins);
      if (pos == 0 || pos >= col.size()) continue;
      // A boundary inside a run of equal values separates nothing.
      if (col[pos - 1] == col[pos]) continue;
      const double cut = 0.5 * (col[pos - 1] + col[pos]);
      if (c.empty() || cut > c.back()) c.push_back(cut);
    }
  }
  return Discretizer(cuts);
}

Discretizer Discretizer::mdl(const DatasetView& d) {
  std::vector<std::vector<double>> cuts(d.dim());
  for (std::size_t a = 0; a < d.dim(); ++a) {
    std::vector<std::pair<double, int>> values(d.size());
    for (std::size_t i = 0; i < d.size(); ++i)
      values[i] = {d.row(i)[a], d.label(i)};
    std::sort(values.begin(), values.end());
    mdl_split(values, 0, values.size(), cuts[a], 0);
    std::sort(cuts[a].begin(), cuts[a].end());
  }
  return Discretizer(cuts);
}

Discretizer Discretizer::mdl_with_fallback(const DatasetView& d,
                                           int fallback_bins) {
  const Discretizer supervised = mdl(d);
  const Discretizer ef = equal_frequency(d, fallback_bins);
  std::vector<std::vector<double>> cuts(supervised.dim());
  for (std::size_t a = 0; a < cuts.size(); ++a) {
    cuts[a] = supervised.bins(a) > 1 ? supervised.cut_points(a)
                                     : ef.cut_points(a);
  }
  return Discretizer(cuts);
}

Discretizer::Discretizer(const std::vector<std::vector<double>>& cuts) {
  offsets_.reserve(cuts.size() + 1);
  offsets_.push_back(0);
  std::size_t total = 0;
  for (const auto& c : cuts) total += c.size();
  cuts_.reserve(total);
  for (const auto& c : cuts) {
    cuts_.insert(cuts_.end(), c.begin(), c.end());
    offsets_.push_back(cuts_.size());
  }
}

std::size_t Discretizer::max_bins() const noexcept {
  std::size_t m = 1;
  for (std::size_t a = 0; a + 1 < offsets_.size(); ++a)
    m = std::max(m, offsets_[a + 1] - offsets_[a] + 1);
  return m;
}

std::vector<double> Discretizer::cut_points(std::size_t attr) const {
  check_attr(attr);
  return {cuts_.begin() + static_cast<std::ptrdiff_t>(offsets_[attr]),
          cuts_.begin() + static_cast<std::ptrdiff_t>(offsets_[attr + 1])};
}

std::vector<std::size_t> Discretizer::transform(
    std::span<const double> row) const {
  std::vector<std::size_t> out(dim());
  for (std::size_t a = 0; a < out.size(); ++a) out[a] = bin_of(a, row[a]);
  return out;
}

}  // namespace hpcap::ml
