#include "ml/feature_select.h"

#include <algorithm>

#include "ml/discretize.h"
#include "ml/evaluate.h"
#include "ml/info.h"
#include "util/parallel.h"

namespace hpcap::ml {

std::vector<std::size_t> rank_by_information_gain(const DatasetView& d,
                                                  int bins) {
  const Discretizer disc = Discretizer::equal_frequency(d, bins);
  const std::vector<double> gains = information_gains(d, disc);
  std::vector<std::size_t> order(d.dim());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&gains](std::size_t a, std::size_t b) {
                     return gains[a] > gains[b];
                   });
  return order;
}

std::vector<std::size_t> forward_select(const Classifier& prototype,
                                        const Dataset& d,
                                        const FeatureSelectOptions& opts,
                                        Rng& rng) {
  const auto ranked = rank_by_information_gain(d, opts.ranking_bins);
  std::vector<std::size_t> selected;
  double best_ba = 0.0;
  int misses = 0;
  std::size_t pos = 0;

  // Speculative parallel forward selection. Each trial's CV score depends
  // only on (selected, candidate): Rng::split derives the trial stream
  // from the candidate's salt without advancing `rng`, so a window of
  // upcoming candidates can be scored concurrently against the current
  // selection. Acceptance is then decided by the serial scan below —
  // exactly the one-at-a-time algorithm — and on the first acceptance the
  // rest of the window is discarded (the selection changed, so those
  // scores are stale). Selections are therefore identical at every thread
  // count; speculation only costs wasted trials after an accept, and the
  // window never extends past the patience budget serial execution had.
  //
  // Speculation only pays when the window's trials genuinely overlap in
  // time. Inside an enclosing parallel region (synopsis-bank builds fan
  // out one task per worker) nested loops run inline, so a wide window
  // would evaluate — and then discard — extra full CVs serially; drop to
  // a window of 1 there.
  const std::size_t speculation =
      util::in_parallel_region() ? 1 : std::max<std::size_t>(1, util::max_threads());
  while (pos < ranked.size() &&
         static_cast<int>(selected.size()) < opts.max_attributes &&
         misses < opts.patience) {
    const std::size_t window =
        std::min({ranked.size() - pos,
                  static_cast<std::size_t>(opts.patience - misses),
                  speculation});
    const auto scores = util::parallel_map(window, [&](std::size_t k) {
      const std::size_t cand = ranked[pos + k];
      std::vector<std::size_t> trial = selected;
      trial.push_back(cand);
      const Dataset projected = d.project(trial);
      Rng cv_rng = rng.split(cand + 1);
      return cross_validate(prototype, projected, opts.cv_folds, cv_rng)
          .balanced_accuracy();
    });

    bool accepted = false;
    for (std::size_t k = 0; k < window; ++k) {
      if (selected.empty() || scores[k] >= best_ba + opts.min_improvement) {
        selected.push_back(ranked[pos + k]);
        best_ba = std::max(best_ba, scores[k]);
        misses = 0;
        pos += k + 1;
        accepted = true;
        break;
      }
      ++misses;
      if (misses >= opts.patience) {
        pos += k + 1;
        break;
      }
    }
    if (!accepted && misses < opts.patience) pos += window;
  }
  return selected;
}

}  // namespace hpcap::ml
