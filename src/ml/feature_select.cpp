#include "ml/feature_select.h"

#include <algorithm>

#include "ml/discretize.h"
#include "ml/evaluate.h"
#include "ml/info.h"

namespace hpcap::ml {

std::vector<std::size_t> rank_by_information_gain(const Dataset& d,
                                                  int bins) {
  const Discretizer disc = Discretizer::equal_frequency(d, bins);
  const std::vector<double> gains = information_gains(d, disc);
  std::vector<std::size_t> order(d.dim());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&gains](std::size_t a, std::size_t b) {
                     return gains[a] > gains[b];
                   });
  return order;
}

std::vector<std::size_t> forward_select(const Classifier& prototype,
                                        const Dataset& d,
                                        const FeatureSelectOptions& opts,
                                        Rng& rng) {
  const auto ranked = rank_by_information_gain(d, opts.ranking_bins);
  std::vector<std::size_t> selected;
  double best_ba = 0.0;
  int misses = 0;

  for (std::size_t cand : ranked) {
    if (static_cast<int>(selected.size()) >= opts.max_attributes) break;
    if (misses >= opts.patience) break;

    std::vector<std::size_t> trial = selected;
    trial.push_back(cand);
    const Dataset view = d.project(trial);
    Rng cv_rng = rng.split(cand + 1);
    const Confusion c =
        cross_validate(prototype, view, opts.cv_folds, cv_rng);
    const double ba = c.balanced_accuracy();
    if (selected.empty() || ba >= best_ba + opts.min_improvement) {
      selected = std::move(trial);
      best_ba = std::max(best_ba, ba);
      misses = 0;
    } else {
      ++misses;
    }
  }
  return selected;
}

}  // namespace hpcap::ml
