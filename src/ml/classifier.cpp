#include "ml/classifier.h"

#include <stdexcept>

#include "ml/linreg.h"
#include "ml/naive_bayes.h"
#include "ml/svm.h"
#include "ml/tan.h"

namespace hpcap::ml {

void Classifier::predict_score_many(const double* rows, std::size_t dim,
                                    std::size_t count, double* out) const {
  for (std::size_t w = 0; w < count; ++w)
    out[w] = predict_score({rows + w * dim, dim});
}

std::unique_ptr<Classifier> make_learner(LearnerKind kind) {
  switch (kind) {
    case LearnerKind::kLinearRegression:
      return std::make_unique<LinearRegression>();
    case LearnerKind::kNaiveBayes:
      return std::make_unique<NaiveBayes>();
    case LearnerKind::kSvm:
      return std::make_unique<Svm>();
    case LearnerKind::kTan:
      return std::make_unique<Tan>();
  }
  throw std::invalid_argument("make_learner: unknown kind");
}

std::string learner_name(LearnerKind kind) {
  switch (kind) {
    case LearnerKind::kLinearRegression: return "LR";
    case LearnerKind::kNaiveBayes: return "Naive";
    case LearnerKind::kSvm: return "SVM";
    case LearnerKind::kTan: return "TAN";
  }
  return "?";
}

}  // namespace hpcap::ml
