#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace hpcap::ml {

void NaiveBayes::fit(const DatasetView& d) {
  if (d.empty()) throw std::invalid_argument("NaiveBayes: empty data");
  disc_ = Discretizer::mdl(d);

  const auto n = static_cast<double>(d.size());
  const double n1 = static_cast<double>(d.positives());
  const double n0 = n - n1;
  log_prior_[0] = std::log((n0 + laplace_) / (n + 2.0 * laplace_));
  log_prior_[1] = std::log((n1 + laplace_) / (n + 2.0 * laplace_));

  cond_offsets_.assign(d.dim() + 1, 0);
  for (std::size_t a = 0; a < d.dim(); ++a)
    cond_offsets_[a + 1] = cond_offsets_[a] + disc_->bins(a) * 2;
  log_cond_.assign(cond_offsets_.back(), 0.0);
  std::vector<double> counts;
  for (std::size_t a = 0; a < d.dim(); ++a) {
    const std::size_t bins = disc_->bins(a);
    counts.assign(bins * 2, 0.0);
    for (std::size_t i = 0; i < d.size(); ++i) {
      const std::size_t b = disc_->bin_of(a, d.row(i)[a]);
      counts[b * 2 + static_cast<std::size_t>(d.label(i))] += 1.0;
    }
    double* lc = log_cond_.data() + cond_offsets_[a];
    const double class_tot[2] = {n0, n1};
    for (std::size_t c = 0; c < 2; ++c) {
      const double denom =
          class_tot[c] + laplace_ * static_cast<double>(bins);
      for (std::size_t b = 0; b < bins; ++b)
        lc[b * 2 + c] = std::log((counts[b * 2 + c] + laplace_) / denom);
    }
  }
}

double NaiveBayes::predict_score(std::span<const double> x) const {
  if (!disc_) throw std::logic_error("NaiveBayes: not fitted");
  double lp[2] = {log_prior_[0], log_prior_[1]};
  const std::size_t dim = cond_offsets_.size() - 1;
  for (std::size_t a = 0; a < dim && a < x.size(); ++a) {
    const std::size_t b = disc_->bin_of(a, x[a]);
    const double* lc = log_cond_.data() + cond_offsets_[a] + b * 2;
    lp[0] += lc[0];
    lp[1] += lc[1];
  }
  // Softmax over the two log-joints.
  const double m = std::max(lp[0], lp[1]);
  const double e0 = std::exp(lp[0] - m);
  const double e1 = std::exp(lp[1] - m);
  return e1 / (e0 + e1);
}

// hpcap-lint: hot-path
void NaiveBayes::predict_score_many(const double* rows, std::size_t dim,
                                    std::size_t count, double* out) const {
  if (!disc_) throw std::logic_error("NaiveBayes: not fitted");
  const std::size_t d = std::min(cond_offsets_.size() - 1, dim);
  static thread_local std::vector<double> lp;
  lp.resize(count * 2);
  for (std::size_t w = 0; w < count; ++w) {
    lp[w * 2 + 0] = log_prior_[0];
    lp[w * 2 + 1] = log_prior_[1];
  }
  // Column walk: the cut range and table base load once per attribute,
  // not once per (row, attribute). Each row still accumulates its log
  // probabilities in ascending attribute order — the same addition
  // sequence as predict_score, hence bit-identical sums.
  for (std::size_t a = 0; a < d; ++a) {
    const auto [first, last] = disc_->cut_range(a);
    const double* table = log_cond_.data() + cond_offsets_[a];
    for (std::size_t w = 0; w < count; ++w) {
      const std::size_t b = static_cast<std::size_t>(
          std::upper_bound(first, last, rows[w * dim + a]) - first);
      lp[w * 2 + 0] += table[b * 2 + 0];
      lp[w * 2 + 1] += table[b * 2 + 1];
    }
  }
  for (std::size_t w = 0; w < count; ++w) {
    const double m = std::max(lp[w * 2], lp[w * 2 + 1]);
    const double e0 = std::exp(lp[w * 2] - m);
    const double e1 = std::exp(lp[w * 2 + 1] - m);
    out[w] = e1 / (e0 + e1);
  }
}

}  // namespace hpcap::ml
