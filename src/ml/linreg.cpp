#include "ml/linreg.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/matrix.h"
#include "util/stats.h"

namespace hpcap::ml {

void LinearRegression::fit(const DatasetView& d) {
  if (d.empty()) throw std::invalid_argument("LinearRegression: empty data");
  const std::size_t n = d.size();
  const std::size_t p = d.dim();

  // Standardize columns; constant columns get scale 1 (weight ends ~0).
  mean_.assign(p, 0.0);
  scale_.assign(p, 1.0);
  for (std::size_t a = 0; a < p; ++a) {
    RunningStats s;
    for (std::size_t i = 0; i < n; ++i) s.add(d.row(i)[a]);
    mean_[a] = s.mean();
    scale_[a] = s.stddev() > 1e-12 ? s.stddev() : 1.0;
  }

  Matrix x(n, p);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t a = 0; a < p; ++a)
      x(i, a) = (d.row(i)[a] - mean_[a]) / scale_[a];
    y[i] = static_cast<double>(d.label(i));
  }

  // Ridge normal equations on centered targets: the intercept is the
  // class mean because the features are standardized.
  const double y_mean = hpcap::mean(y);
  for (double& v : y) v -= y_mean;

  Matrix g = x.gram();
  for (std::size_t a = 0; a < p; ++a) g(a, a) += ridge_ * static_cast<double>(n);
  const std::vector<double> xty = x.transpose_times(y);
  w_ = solve_cholesky(g, xty);
  b_ = y_mean;
  fitted_ = true;
}

double LinearRegression::predict_score(std::span<const double> x) const {
  if (!fitted_) throw std::logic_error("LinearRegression: not fitted");
  double s = b_;
  const std::size_t p = std::min(x.size(), w_.size());
  for (std::size_t a = 0; a < p; ++a)
    s += w_[a] * (x[a] - mean_[a]) / scale_[a];
  return std::clamp(s, 0.0, 1.0);
}

}  // namespace hpcap::ml
