// Evaluation: confusion matrices, the paper's Balanced Accuracy metric
// (mean of true-positive and true-negative rates, §IV.A), and stratified
// k-fold cross-validation (the paper validates synopses by 10-fold CV,
// §II.B.2).
//
// cross_validate runs its fold loop on the util/parallel.h pool; fold
// results are pooled in fold-index order, so confusion counts are
// bit-identical at every thread count. Folds train and evaluate through
// zero-copy DatasetViews — no per-fold Dataset copies.
#pragma once

#include <cstddef>
#include <memory>

#include "ml/classifier.h"
#include "ml/dataset.h"

namespace hpcap::ml {

struct Confusion {
  std::size_t tp = 0, tn = 0, fp = 0, fn = 0;

  void add(int truth, int predicted) noexcept;
  std::size_t total() const noexcept { return tp + tn + fp + fn; }
  double accuracy() const noexcept;
  // True-positive rate (recall on the overload class).
  double tpr() const noexcept;
  // True-negative rate.
  double tnr() const noexcept;
  // Balanced Accuracy: (TPR + TNR) / 2. When a class is absent from the
  // evaluation set, BA degenerates to the other class's rate.
  double balanced_accuracy() const noexcept;
  double precision() const noexcept;
};

// Evaluates a *fitted* classifier on a test set.
Confusion evaluate(const Classifier& clf, const DatasetView& test);

// Cross-validation outcome: the pooled confusion plus fold accounting.
// Degenerate folds (empty, or a training split that lost one whole class)
// are skipped, not silently: they show up as folds_used < folds_requested
// and a WARN log line.
struct CvResult {
  Confusion confusion;
  int folds_requested = 0;
  int folds_used = 0;

  int folds_skipped() const noexcept { return folds_requested - folds_used; }
  double balanced_accuracy() const noexcept {
    return confusion.balanced_accuracy();
  }
};

// Stratified k-fold cross-validation: clones the prototype per fold, fits
// on k-1 folds, evaluates on the held-out fold, and pools the confusion
// counts in fold order.
CvResult cross_validate(const Classifier& prototype, const DatasetView& d,
                        int folds, Rng& rng);

}  // namespace hpcap::ml
