#include "ml/info.h"

#include <cmath>

namespace hpcap::ml {

namespace {
double plogp(double p) { return p > 0.0 ? p * std::log2(p) : 0.0; }
}  // namespace

double class_entropy(const DatasetView& d) {
  if (d.empty()) return 0.0;
  const double p1 = d.positive_rate();
  return -plogp(p1) - plogp(1.0 - p1);
}

double information_gain(const DatasetView& d, const Discretizer& disc,
                        std::size_t attr) {
  if (d.empty()) return 0.0;
  const std::size_t bins = disc.bins(attr);
  // Joint counts bin × class.
  std::vector<std::size_t> joint(bins * 2, 0);
  for (std::size_t i = 0; i < d.size(); ++i) {
    const std::size_t b = disc.bin_of(attr, d.row(i)[attr]);
    ++joint[b * 2 + static_cast<std::size_t>(d.label(i))];
  }
  const auto n = static_cast<double>(d.size());
  double h_c_given_a = 0.0;
  for (std::size_t b = 0; b < bins; ++b) {
    const std::size_t nb = joint[b * 2] + joint[b * 2 + 1];
    if (nb == 0) continue;
    const double pb = static_cast<double>(nb) / n;
    double h = 0.0;
    for (int c = 0; c < 2; ++c)
      h -= plogp(static_cast<double>(joint[b * 2 + static_cast<std::size_t>(c)]) /
                 static_cast<double>(nb));
    h_c_given_a += pb * h;
  }
  return class_entropy(d) - h_c_given_a;
}

std::vector<double> information_gains(const DatasetView& d,
                                      const Discretizer& disc) {
  std::vector<double> gains(d.dim(), 0.0);
  for (std::size_t a = 0; a < d.dim(); ++a)
    gains[a] = information_gain(d, disc, a);
  return gains;
}

double conditional_mutual_information(const DatasetView& d,
                                      const Discretizer& disc, std::size_t i,
                                      std::size_t j) {
  if (d.empty() || i == j) return 0.0;
  const std::size_t bi = disc.bins(i);
  const std::size_t bj = disc.bins(j);
  // Counts over (a_i, a_j, c).
  std::vector<double> joint(bi * bj * 2, 0.0);
  std::vector<double> margin_i(bi * 2, 0.0);
  std::vector<double> margin_j(bj * 2, 0.0);
  double class_count[2] = {0.0, 0.0};
  for (std::size_t r = 0; r < d.size(); ++r) {
    const std::size_t vi = disc.bin_of(i, d.row(r)[i]);
    const std::size_t vj = disc.bin_of(j, d.row(r)[j]);
    const auto c = static_cast<std::size_t>(d.label(r));
    joint[(vi * bj + vj) * 2 + c] += 1.0;
    margin_i[vi * 2 + c] += 1.0;
    margin_j[vj * 2 + c] += 1.0;
    class_count[c] += 1.0;
  }
  const auto n = static_cast<double>(d.size());
  double cmi = 0.0;
  for (std::size_t c = 0; c < 2; ++c) {
    if (class_count[c] == 0.0) continue;
    for (std::size_t vi = 0; vi < bi; ++vi) {
      for (std::size_t vj = 0; vj < bj; ++vj) {
        const double p_xyz = joint[(vi * bj + vj) * 2 + c] / n;
        if (p_xyz <= 0.0) continue;
        const double p_xz = margin_i[vi * 2 + c] / n;
        const double p_yz = margin_j[vj * 2 + c] / n;
        const double p_z = class_count[c] / n;
        cmi += p_xyz * std::log2(p_xyz * p_z / (p_xz * p_yz));
      }
    }
  }
  return std::max(0.0, cmi);
}

}  // namespace hpcap::ml
