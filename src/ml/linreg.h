// Linear regression synopsis builder.
//
// Regresses the binary class on standardized attributes with a ridge
// penalty (the normal equations are otherwise ill-conditioned: many HPC
// metrics are near-collinear, e.g. l2_misses and bus_transactions), then
// thresholds the regression output at 1/2. This mirrors WEKA's use of
// regression as a classifier and is the paper's weakest learner — it can
// only capture linear structure (§V.B observation 3).
#pragma once

#include <iosfwd>
#include <vector>

#include "ml/classifier.h"

namespace hpcap::ml {

class LinearRegression final : public Classifier {
 public:
  explicit LinearRegression(double ridge = 1e-3) : ridge_(ridge) {}

  void fit(const DatasetView& d) override;
  double predict_score(std::span<const double> x) const override;
  bool fitted() const noexcept override { return fitted_; }
  std::unique_ptr<Classifier> clone() const override {
    return std::make_unique<LinearRegression>(ridge_);
  }
  std::string name() const override { return "LR"; }

  const std::vector<double>& weights() const noexcept { return w_; }
  double intercept() const noexcept { return b_; }

  void save(std::ostream& os) const;
  static LinearRegression load(std::istream& is);

 private:
  double ridge_;
  bool fitted_ = false;
  std::vector<double> mean_, scale_;  // standardization
  std::vector<double> w_;
  double b_ = 0.0;
};

}  // namespace hpcap::ml
