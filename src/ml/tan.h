// Tree-Augmented Naive Bayes (TAN) synopsis builder — the learner the
// paper recommends: near-SVM accuracy at a fiftieth of the build cost
// (§V.B, "Considering the accuracy and runtime overhead, TAN is the best
// choice for synopsis construction").
//
// Construction (Friedman, Geiger & Goldszmidt 1997):
//  1. discretize attributes (supervised MDL);
//  2. compute conditional mutual information I(A_i; A_j | C) for all
//     pairs;
//  3. build the maximum-weight spanning tree over that graph and direct it
//     away from a root, giving every attribute at most one attribute
//     parent in addition to the class;
//  4. estimate P(C), P(A_root | C) and P(A_i | parent(A_i), C) with
//     Laplace smoothing.
#pragma once

#include <iosfwd>
#include <optional>
#include <vector>

#include "ml/classifier.h"
#include "ml/discretize.h"

namespace hpcap::ml {

class Tan final : public Classifier {
 public:
  explicit Tan(double laplace = 1.0) : laplace_(laplace) {}

  void fit(const DatasetView& d) override;
  double predict_score(std::span<const double> x) const override;
  // Batch kernel: discretizes every (row, attribute) cell once in a first
  // pass, then reuses the cached bins for both own- and parent-bin table
  // lookups — the scalar path re-runs the parent's binary search per
  // attribute. Per-row additions stay in attribute order: bit-identical
  // to predict_score.
  void predict_score_many(const double* rows, std::size_t dim,
                          std::size_t count, double* out) const override;
  bool fitted() const noexcept override { return disc_.has_value(); }
  std::unique_ptr<Classifier> clone() const override {
    return std::make_unique<Tan>(laplace_);
  }
  std::string name() const override { return "TAN"; }

  // Attribute-parent of each attribute (-1 for the root); exposed so tests
  // can verify the learned dependency structure.
  const std::vector<int>& parents() const noexcept { return parent_; }

  void save(std::ostream& os) const;
  static Tan load(std::istream& is);

 private:
  double laplace_;
  std::optional<Discretizer> disc_;
  std::vector<int> parent_;
  double log_prior_[2] = {0.0, 0.0};
  // For attribute a: table indexed [own_bin][parent_bin][class]; root
  // attributes use parent_bin = 0 with a single parent bin. All attribute
  // tables are packed into one flat block — attribute a's entry lives at
  // log_cond_[cond_offsets_[a] + (own_bin * parent_bins_[a] + parent_bin)
  // * 2 + c] — so prediction walks contiguous memory with no
  // per-attribute vector hop and no allocation.
  std::vector<double> log_cond_;
  std::vector<std::size_t> cond_offsets_;  // size dim + 1
  std::vector<std::size_t> parent_bins_;  // bins of each attribute's parent
};

}  // namespace hpcap::ml
