#include "ml/dataset.h"

#include <algorithm>
#include <stdexcept>

namespace hpcap::ml {

void Dataset::add(std::vector<double> x, int y) {
  if (x.size() != names_.size())
    throw std::invalid_argument("Dataset::add: dimension mismatch");
  if (y != 0 && y != 1)
    throw std::invalid_argument("Dataset::add: label must be 0 or 1");
  x_.push_back(std::move(x));
  y_.push_back(y);
}

std::size_t Dataset::positives() const noexcept {
  std::size_t p = 0;
  for (int y : y_) p += static_cast<std::size_t>(y == 1);
  return p;
}

double Dataset::positive_rate() const noexcept {
  return empty() ? 0.0
                 : static_cast<double>(positives()) /
                       static_cast<double>(size());
}

std::vector<double> Dataset::column(std::size_t attr) const {
  if (attr >= dim()) throw std::out_of_range("Dataset::column");
  std::vector<double> col(size());
  for (std::size_t i = 0; i < size(); ++i) col[i] = x_[i][attr];
  return col;
}

Dataset Dataset::project(const std::vector<std::size_t>& attrs) const {
  std::vector<std::string> names;
  names.reserve(attrs.size());
  for (std::size_t a : attrs) {
    if (a >= dim()) throw std::out_of_range("Dataset::project");
    names.push_back(names_[a]);
  }
  Dataset out(std::move(names));
  for (std::size_t i = 0; i < size(); ++i) {
    std::vector<double> row;
    row.reserve(attrs.size());
    for (std::size_t a : attrs) row.push_back(x_[i][a]);
    out.add(std::move(row), y_[i]);
  }
  return out;
}

Dataset Dataset::subset(const std::vector<std::size_t>& rows) const {
  Dataset out(names_);
  for (std::size_t r : rows) {
    if (r >= size()) throw std::out_of_range("Dataset::subset");
    out.add(x_[r], y_[r]);
  }
  return out;
}

void Dataset::append(const Dataset& other) {
  if (other.names_ != names_)
    throw std::invalid_argument("Dataset::append: attribute mismatch");
  for (std::size_t i = 0; i < other.size(); ++i)
    add(other.x_[i], other.y_[i]);
}

std::vector<std::vector<std::size_t>> Dataset::stratified_folds(
    int k, Rng& rng) const {
  if (k < 2) throw std::invalid_argument("stratified_folds: k must be >= 2");
  std::vector<std::size_t> pos, neg;
  for (std::size_t i = 0; i < size(); ++i)
    (y_[i] == 1 ? pos : neg).push_back(i);
  // Shuffle each class, then deal round-robin into folds.
  auto shuffle = [&rng](std::vector<std::size_t>& v) {
    const auto perm = rng.permutation(v.size());
    std::vector<std::size_t> out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) out[i] = v[perm[i]];
    v = std::move(out);
  };
  shuffle(pos);
  shuffle(neg);
  std::vector<std::vector<std::size_t>> folds(static_cast<std::size_t>(k));
  std::size_t next = 0;
  for (std::size_t i : pos) folds[next++ % folds.size()].push_back(i);
  for (std::size_t i : neg) folds[next++ % folds.size()].push_back(i);
  return folds;
}

std::pair<Dataset, Dataset> Dataset::stratified_split(double train_fraction,
                                                      Rng& rng) const {
  train_fraction = std::clamp(train_fraction, 0.0, 1.0);
  std::vector<std::size_t> pos, neg;
  for (std::size_t i = 0; i < size(); ++i)
    (y_[i] == 1 ? pos : neg).push_back(i);
  std::vector<std::size_t> train, test;
  auto deal = [&](std::vector<std::size_t>& cls) {
    const auto perm = rng.permutation(cls.size());
    const auto n_train =
        static_cast<std::size_t>(train_fraction *
                                 static_cast<double>(cls.size()));
    for (std::size_t i = 0; i < cls.size(); ++i)
      (i < n_train ? train : test).push_back(cls[perm[i]]);
  };
  deal(pos);
  deal(neg);
  std::sort(train.begin(), train.end());
  std::sort(test.begin(), test.end());
  return {subset(train), subset(test)};
}

}  // namespace hpcap::ml
