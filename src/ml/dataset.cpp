#include "ml/dataset.h"

#include <algorithm>
#include <stdexcept>

namespace hpcap::ml {

void Dataset::add(std::vector<double> x, int y) {
  add_row(std::span<const double>(x), y);
}

void Dataset::add_row(std::span<const double> x, int y) {
  if (x.size() != names_.size())
    throw std::invalid_argument("Dataset::add: dimension mismatch");
  if (y != 0 && y != 1)
    throw std::invalid_argument("Dataset::add: label must be 0 or 1");
  data_.insert(data_.end(), x.begin(), x.end());
  y_.push_back(y);
}

void Dataset::reserve(std::size_t rows) {
  data_.reserve(data_.size() + rows * dim());
  y_.reserve(y_.size() + rows);
}

std::size_t Dataset::positives() const noexcept {
  std::size_t p = 0;
  for (int y : y_) p += static_cast<std::size_t>(y == 1);
  return p;
}

double Dataset::positive_rate() const noexcept {
  return empty() ? 0.0
                 : static_cast<double>(positives()) /
                       static_cast<double>(size());
}

std::vector<double> Dataset::column(std::size_t attr) const {
  if (attr >= dim()) throw std::out_of_range("Dataset::column");
  std::vector<double> col(size());
  for (std::size_t i = 0; i < size(); ++i) col[i] = data_[i * dim() + attr];
  return col;
}

Dataset Dataset::project(const std::vector<std::size_t>& attrs) const {
  std::vector<std::string> names;
  names.reserve(attrs.size());
  for (std::size_t a : attrs) {
    if (a >= dim()) throw std::out_of_range("Dataset::project");
    names.push_back(names_[a]);
  }
  Dataset out(std::move(names));
  out.data_.resize(size() * attrs.size());
  double* dst = out.data_.data();
  for (std::size_t i = 0; i < size(); ++i) {
    const double* src = data_.data() + i * dim();
    for (std::size_t a : attrs) *dst++ = src[a];
  }
  out.y_ = y_;
  return out;
}

Dataset Dataset::subset(const std::vector<std::size_t>& rows) const {
  for (std::size_t r : rows)
    if (r >= size()) throw std::out_of_range("Dataset::subset");
  Dataset out(names_);
  out.data_.resize(rows.size() * dim());
  out.y_.resize(rows.size());
  double* dst = out.data_.data();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double* src = data_.data() + rows[i] * dim();
    dst = std::copy(src, src + dim(), dst);
    out.y_[i] = y_[rows[i]];
  }
  return out;
}

void Dataset::append(const Dataset& other) {
  if (other.names_ != names_)
    throw std::invalid_argument("Dataset::append: attribute mismatch");
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  y_.insert(y_.end(), other.y_.begin(), other.y_.end());
}

std::vector<std::vector<std::size_t>> Dataset::stratified_folds(
    int k, Rng& rng) const {
  return DatasetView(*this).stratified_folds(k, rng);
}

std::pair<Dataset, Dataset> Dataset::stratified_split(double train_fraction,
                                                      Rng& rng) const {
  train_fraction = std::clamp(train_fraction, 0.0, 1.0);
  std::vector<std::size_t> pos, neg;
  for (std::size_t i = 0; i < size(); ++i)
    (y_[i] == 1 ? pos : neg).push_back(i);
  std::vector<std::size_t> train, test;
  auto deal = [&](std::vector<std::size_t>& cls) {
    const auto perm = rng.permutation(cls.size());
    const auto n_train =
        static_cast<std::size_t>(train_fraction *
                                 static_cast<double>(cls.size()));
    for (std::size_t i = 0; i < cls.size(); ++i)
      (i < n_train ? train : test).push_back(cls[perm[i]]);
  };
  deal(pos);
  deal(neg);
  std::sort(train.begin(), train.end());
  std::sort(test.begin(), test.end());
  return {subset(train), subset(test)};
}

DatasetView::DatasetView(const Dataset& base, std::vector<std::size_t> rows)
    : base_(&base), rows_(std::move(rows)), all_(false) {
  for (std::size_t r : rows_)
    if (r >= base.size()) throw std::out_of_range("DatasetView: row index");
}

std::size_t DatasetView::positives() const noexcept {
  std::size_t p = 0;
  for (std::size_t i = 0; i < size(); ++i)
    p += static_cast<std::size_t>(label(i) == 1);
  return p;
}

double DatasetView::positive_rate() const noexcept {
  return empty() ? 0.0
                 : static_cast<double>(positives()) /
                       static_cast<double>(size());
}

std::vector<double> DatasetView::column(std::size_t attr) const {
  if (attr >= dim()) throw std::out_of_range("DatasetView::column");
  std::vector<double> col(size());
  for (std::size_t i = 0; i < size(); ++i) col[i] = row(i)[attr];
  return col;
}

DatasetView DatasetView::select(const std::vector<std::size_t>& rows) const {
  std::vector<std::size_t> base_rows;
  base_rows.reserve(rows.size());
  for (std::size_t r : rows) {
    if (r >= size()) throw std::out_of_range("DatasetView::select");
    base_rows.push_back(index_of(r));
  }
  return DatasetView(*base_, std::move(base_rows));
}

std::vector<std::vector<std::size_t>> DatasetView::stratified_folds(
    int k, Rng& rng) const {
  if (k < 2) throw std::invalid_argument("stratified_folds: k must be >= 2");
  std::vector<std::size_t> pos, neg;
  for (std::size_t i = 0; i < size(); ++i)
    (label(i) == 1 ? pos : neg).push_back(i);
  // Shuffle each class, then deal round-robin into folds.
  auto shuffle = [&rng](std::vector<std::size_t>& v) {
    const auto perm = rng.permutation(v.size());
    std::vector<std::size_t> out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) out[i] = v[perm[i]];
    v = std::move(out);
  };
  shuffle(pos);
  shuffle(neg);
  std::vector<std::vector<std::size_t>> folds(static_cast<std::size_t>(k));
  std::size_t next = 0;
  for (std::size_t i : pos) folds[next++ % folds.size()].push_back(i);
  for (std::size_t i : neg) folds[next++ % folds.size()].push_back(i);
  return folds;
}

Dataset DatasetView::materialize() const {
  Dataset out(base_->attribute_names());
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.add_row(row(i), label(i));
  return out;
}

}  // namespace hpcap::ml
