// Attribute discretization for the Bayesian learners and for information-
// gain attribute ranking.
//
// Two strategies:
//  * Equal-frequency binning — unsupervised, used for quick info-gain
//    ranking where only a rough density estimate is needed.
//  * Fayyad–Irani MDL — supervised entropy minimization with the MDL
//    stopping criterion (the method WEKA's discretization filter and its
//    NaiveBayes/TAN pipeline use), used when fitting the Bayesian models.
//
// A fitted Discretizer stores per-attribute ascending cut points in one
// flat array with a per-attribute offset table; bin_of(attr, v) is a
// branch-light binary search over the attribute's contiguous cut range
// (two loads to find the range, no per-attribute vector indirection).
// Attributes for which no informative cut exists get a single bin (the
// learners treat them as uninformative rather than failing). The online
// observe path calls bin_of per attribute per interval, so it allocates
// nothing.
#pragma once

#include <algorithm>
#include <cstddef>
#include <iosfwd>
#include <span>
#include <stdexcept>
#include <vector>

#include "ml/dataset.h"

namespace hpcap::ml {

class Discretizer {
 public:
  // Fits equal-frequency cut points (at most `bins` bins per attribute;
  // duplicate boundaries collapse).
  static Discretizer equal_frequency(const DatasetView& d, int bins);

  // Fits supervised MDL (Fayyad–Irani) cut points against the labels.
  static Discretizer mdl(const DatasetView& d);

  // MDL, with an equal-frequency fallback (`fallback_bins`) for attributes
  // where MDL finds no informative cut. MDL judges each attribute's
  // *marginal* relevance; an attribute that only matters jointly (the XOR
  // pattern) gets no cuts and would be invisible to a dependency-aware
  // model like TAN. The fallback keeps such attributes representable.
  static Discretizer mdl_with_fallback(const DatasetView& d,
                                       int fallback_bins = 2);

  std::size_t dim() const noexcept { return offsets_.size() - 1; }
  // Number of bins for an attribute (cuts + 1).
  std::size_t bins(std::size_t attr) const {
    check_attr(attr);
    return offsets_[attr + 1] - offsets_[attr] + 1;
  }
  // Largest bin count over all attributes.
  std::size_t max_bins() const noexcept;

  // 0-based bin index of value v for attribute `attr`: binary search over
  // the attribute's contiguous cut range. Allocation-free.
  std::size_t bin_of(std::size_t attr, double v) const {
    check_attr(attr);
    const double* first = cuts_.data() + offsets_[attr];
    const double* last = cuts_.data() + offsets_[attr + 1];
    return static_cast<std::size_t>(std::upper_bound(first, last, v) -
                                    first);
  }

  // Contiguous ascending cut range of one attribute, for batch kernels
  // that hoist the range lookup out of a per-row loop. bin_of(attr, v)
  // == upper_bound(first, last, v) - first for the returned pair.
  struct CutRange {
    const double* first;
    const double* last;
  };
  CutRange cut_range(std::size_t attr) const {
    check_attr(attr);
    return {cuts_.data() + offsets_[attr], cuts_.data() + offsets_[attr + 1]};
  }

  // Discretizes a full row.
  std::vector<std::size_t> transform(std::span<const double> row) const;

  // The ascending cut points of one attribute (a copy; the storage is one
  // flat array shared by all attributes).
  std::vector<double> cut_points(std::size_t attr) const;

  // Persistence (see ml/serialize.h for the format conventions).
  void save(std::ostream& os) const;
  static Discretizer load(std::istream& is);

 private:
  explicit Discretizer(const std::vector<std::vector<double>>& cuts);

  void check_attr(std::size_t attr) const {
    if (attr + 1 >= offsets_.size())
      throw std::out_of_range("Discretizer: attribute index");
  }

  // cuts_[offsets_[a] .. offsets_[a+1]) = attribute a's ascending cuts.
  std::vector<double> cuts_;
  std::vector<std::size_t> offsets_;  // size dim() + 1
};

}  // namespace hpcap::ml
