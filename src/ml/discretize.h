// Attribute discretization for the Bayesian learners and for information-
// gain attribute ranking.
//
// Two strategies:
//  * Equal-frequency binning — unsupervised, used for quick info-gain
//    ranking where only a rough density estimate is needed.
//  * Fayyad–Irani MDL — supervised entropy minimization with the MDL
//    stopping criterion (the method WEKA's discretization filter and its
//    NaiveBayes/TAN pipeline use), used when fitting the Bayesian models.
//
// A fitted Discretizer stores per-attribute ascending cut points;
// bin_of(attr, v) returns the 0-based bin via binary search. Attributes
// for which no informative cut exists get a single bin (the learners treat
// them as uninformative rather than failing).
#pragma once

#include <iosfwd>
#include <cstddef>
#include <span>
#include <vector>

#include "ml/dataset.h"

namespace hpcap::ml {

class Discretizer {
 public:
  // Fits equal-frequency cut points (at most `bins` bins per attribute;
  // duplicate boundaries collapse).
  static Discretizer equal_frequency(const DatasetView& d, int bins);

  // Fits supervised MDL (Fayyad–Irani) cut points against the labels.
  static Discretizer mdl(const DatasetView& d);

  // MDL, with an equal-frequency fallback (`fallback_bins`) for attributes
  // where MDL finds no informative cut. MDL judges each attribute's
  // *marginal* relevance; an attribute that only matters jointly (the XOR
  // pattern) gets no cuts and would be invisible to a dependency-aware
  // model like TAN. The fallback keeps such attributes representable.
  static Discretizer mdl_with_fallback(const DatasetView& d,
                                       int fallback_bins = 2);

  std::size_t dim() const noexcept { return cuts_.size(); }
  // Number of bins for an attribute (cuts + 1).
  std::size_t bins(std::size_t attr) const { return cuts_.at(attr).size() + 1; }
  // Largest bin count over all attributes.
  std::size_t max_bins() const noexcept;

  // 0-based bin index of value v for attribute `attr`.
  std::size_t bin_of(std::size_t attr, double v) const;

  // Discretizes a full row.
  std::vector<std::size_t> transform(std::span<const double> row) const;

  const std::vector<double>& cut_points(std::size_t attr) const {
    return cuts_.at(attr);
  }

  // Persistence (see ml/serialize.h for the format conventions).
  void save(std::ostream& os) const;
  static Discretizer load(std::istream& is);

 private:
  explicit Discretizer(std::vector<std::vector<double>> cuts)
      : cuts_(std::move(cuts)) {}

  std::vector<std::vector<double>> cuts_;  // ascending, per attribute
};

}  // namespace hpcap::ml
