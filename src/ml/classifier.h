// Common interface of the four synopsis builders (§II.B.1): Linear
// Regression, Naive Bayes, Tree-Augmented Naive Bayes, and SVM.
//
// A classifier is fit on a Dataset and scores new rows with an estimate of
// P(overload | metrics) in [0, 1]; predict() thresholds at 0.5. clone()
// produces an unfitted copy with the same hyperparameters, which is what
// cross-validation and forward attribute selection retrain per fold.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "ml/dataset.h"

namespace hpcap::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  // Fits on any row selection; a `Dataset` converts to an identity view,
  // and cross-validation folds pass zero-copy views.
  virtual void fit(const DatasetView& d) = 0;

  // Estimated probability (or calibrated score) that the row's class is 1.
  virtual double predict_score(std::span<const double> x) const = 0;

  // Scores `count` rows stored contiguously row-major at `rows` (each row
  // `dim` doubles wide) into out[0..count). The base implementation loops
  // predict_score; the table-driven learners override it with batch
  // kernels that hoist per-attribute dispatch out of the per-row loop.
  // Contract: out[w] is bit-identical to predict_score(row w) for every w.
  virtual void predict_score_many(const double* rows, std::size_t dim,
                                  std::size_t count, double* out) const;

  int predict(std::span<const double> x) const {
    return predict_score(x) >= 0.5 ? 1 : 0;
  }

  virtual bool fitted() const noexcept = 0;

  // Unfitted copy carrying the same hyperparameters.
  virtual std::unique_ptr<Classifier> clone() const = 0;

  virtual std::string name() const = 0;
};

// The paper's four learners, by WEKA-ish name.
enum class LearnerKind { kLinearRegression, kNaiveBayes, kSvm, kTan };

// Factory with each learner's default hyperparameters.
std::unique_ptr<Classifier> make_learner(LearnerKind kind);
std::string learner_name(LearnerKind kind);

}  // namespace hpcap::ml
