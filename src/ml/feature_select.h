// Attribute selection (§II.B.2): rank attributes by information gain,
// then forward-select — add the next most relevant attribute only if it
// improves cross-validated accuracy. The result is the small metric set a
// synopsis actually conditions on (which is also what keeps per-decision
// cost in the tens of milliseconds).
#pragma once

#include <cstddef>
#include <vector>

#include "ml/classifier.h"
#include "ml/dataset.h"

namespace hpcap::ml {

struct FeatureSelectOptions {
  int max_attributes = 8;
  int cv_folds = 10;
  // Minimum balanced-accuracy improvement to accept an attribute.
  double min_improvement = 0.002;
  // Candidates examined (by gain rank) before giving up on growth; lets
  // selection skip a redundant high-gain attribute in favor of a
  // complementary lower-gain one.
  int patience = 6;
  // Bins for the gain-ranking discretization.
  int ranking_bins = 10;
};

// Attribute indices sorted by descending information gain.
std::vector<std::size_t> rank_by_information_gain(const DatasetView& d,
                                                  int bins = 10);

// Forward selection driven by cross-validated balanced accuracy of
// `prototype`. Returns the selected attribute indices (order of addition).
// Candidate trials within a patience window are scored in parallel
// (util/parallel.h); the returned selection is identical at every thread
// count because trial Rng streams derive from Rng::split(candidate salt).
std::vector<std::size_t> forward_select(const Classifier& prototype,
                                        const Dataset& d,
                                        const FeatureSelectOptions& opts,
                                        Rng& rng);

}  // namespace hpcap::ml
