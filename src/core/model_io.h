// Persistence for the core capacity-measurement models: Synopsis,
// CoordinatedPredictor and the whole CapacityMonitor bundle. Together
// with ml/serialize.h this lets the offline trainer and the online
// monitor be separate processes, which is how the paper's tool deploys.
#pragma once

#include <iosfwd>

#include "core/coordinated.h"
#include "core/pipeline.h"
#include "core/synopsis.h"

namespace hpcap::core {

void save_synopsis(std::ostream& os, const Synopsis& synopsis);
Synopsis load_synopsis(std::istream& is);

void save_predictor(std::ostream& os, const CoordinatedPredictor& p);
CoordinatedPredictor load_predictor(std::istream& is);

void save_monitor(std::ostream& os, const CapacityMonitor& monitor);
CapacityMonitor load_monitor(std::istream& is);

}  // namespace hpcap::core
