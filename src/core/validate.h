// Metric-row validation — the gate between the sampling path and the
// synopses.
//
// A synopsis projects a full-catalog row and runs classifier arithmetic on
// it; NaN, Inf or absurd garbage values silently poison every downstream
// probability, and a mispredicted decision derived from garbage looks
// exactly like a confident one. RowValidator decides whether a row is fit
// to vote on at all. Rows that fail do not reach the synopses — the
// affected tier's synopses *abstain* for the window and the coordinated
// predictor falls back (see CoordinatedPredictor::predict_masked).
//
// Validation is conservative by design: on clean data every check passes,
// so the validated path is bit-identical to the unvalidated one (the
// equivalence the fault tests assert). Optional per-metric plausibility
// bounds (fit() over training data) tighten the net for finite-but-absurd
// garbage that slips past the non-finite and absolute-magnitude checks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.h"

namespace hpcap::core {

enum class RowVerdict {
  kValid = 0,
  kWrongDimension,  // row width != expected metric count
  kNonFinite,       // NaN or Inf entry
  kOutOfRange,      // |value| above the absolute or fitted bound
};

class RowValidator {
 public:
  struct Options {
    std::size_t dim = 0;     // expected row width; 0 = accept any width
    double max_abs = 1e18;   // absolute plausibility ceiling, any metric
    // Margin applied to fitted per-metric ranges: a value outside
    // [lo - margin*span, hi + margin*span] of the training range is
    // implausible. Only used after fit().
    double fit_margin = 8.0;
  };

  RowValidator() = default;
  explicit RowValidator(Options opts);

  // Learns per-metric [min, max] plausibility ranges from a training set
  // (rows assumed clean). Also pins the expected dimension.
  void fit(const ml::Dataset& training);

  // Verdict for one full-catalog row. Counts outcomes in stats().
  RowVerdict validate(std::span<const double> row);

  // Per-tier convenience: verdicts for a window's tier rows, as the 0/1
  // validity mask CapacityMonitor::observe_masked expects.
  std::vector<std::uint8_t> validate_tiers(
      const std::vector<std::vector<double>>& tier_rows);

  struct Stats {
    std::uint64_t checked = 0;
    std::uint64_t rejected = 0;
    std::uint64_t wrong_dimension = 0;
    std::uint64_t non_finite = 0;
    std::uint64_t out_of_range = 0;
  };
  const Stats& stats() const noexcept { return stats_; }
  const Options& options() const noexcept { return opts_; }
  bool fitted() const noexcept { return !lo_.empty(); }

 private:
  Options opts_;
  std::vector<double> lo_, hi_;  // fitted plausibility bounds (with margin)
  Stats stats_;
};

}  // namespace hpcap::core
