// Productivity Index (Eq. 1) and Corr-based PI selection (Eq. 2).
//
//   PI = Yield / Cost
//
// with yield and cost drawn from hardware counter metrics: IPC as yield
// and L2 miss rate / stall fraction / misses-per-kiloinstruction as cost.
// A PI definition is evaluated by its Pearson correlation against an
// application-level reference series (throughput); the tier × definition
// pair with the largest Corr becomes the capacity reference for the whole
// site, and that tier is taken as the bottleneck under the measured
// workload (§III.A).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "counters/metric_catalog.h"

namespace hpcap::core {

// PI = metric[yield] / metric[cost] (guarded against zero cost).
struct PiDefinition {
  std::string name;
  std::size_t yield_index;
  std::size_t cost_index;

  double compute(std::span<const double> metrics) const;
};

// The candidate definitions the paper draws from: instruction-level yield
// against memory-system cost.
std::vector<PiDefinition> standard_pi_candidates();

// PI value per sample of a metric time series.
std::vector<double> pi_series(const std::vector<std::vector<double>>& samples,
                              const PiDefinition& def);

// Result of Corr-based selection over tiers × candidate definitions.
struct PiSelection {
  PiDefinition definition;
  int tier = -1;
  double corr = 0.0;
};

// `tier_samples[t]` is tier t's metric series; `reference` the aligned
// application-level series (throughput). Picks the (tier, definition) with
// the largest Corr (Eq. 2). Requires at least one tier and candidate.
PiSelection select_pi(
    const std::vector<std::vector<std::vector<double>>>& tier_samples,
    std::span<const double> reference,
    const std::vector<PiDefinition>& candidates);

}  // namespace hpcap::core
