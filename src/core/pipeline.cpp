#include "core/pipeline.h"

#include <algorithm>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <utility>

#include "util/parallel.h"

namespace hpcap::core {

std::vector<Synopsis> build_synopsis_bank(const SynopsisBuilder& builder,
                                          std::vector<SynopsisTask> tasks) {
  // Dispatch the heaviest training sets first (longest-processing-time
  // order): build cost scales with rows x attributes, and a big build
  // claimed last would strand the pool's tail behind one worker. Results
  // still land in task order, and each slot's value depends only on its
  // own task, so the bank is identical at every thread count.
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&tasks](std::size_t a, std::size_t b) {
                     return tasks[a].training.size() * tasks[a].training.dim() >
                            tasks[b].training.size() * tasks[b].training.dim();
                   });
  std::vector<std::optional<Synopsis>> slots(tasks.size());
  util::parallel_for(order.size(), [&](std::size_t k) {
    const std::size_t i = order[k];
    slots[i].emplace(builder.build(tasks[i].training, tasks[i].spec));
  });
  std::vector<Synopsis> out;
  out.reserve(slots.size());
  for (auto& s : slots) out.push_back(std::move(*s));
  return out;
}

namespace {
CoordinatedPredictor::Options patch_options(
    CoordinatedPredictor::Options opts, std::size_t num_synopses) {
  opts.num_synopses = static_cast<int>(num_synopses);
  return opts;
}
}  // namespace

CapacityMonitor::CapacityMonitor(std::vector<Synopsis> synopses,
                                 CoordinatedPredictor::Options options)
    : synopses_(std::move(synopses)),
      predictor_(patch_options(options, synopses_.size())) {
  if (synopses_.empty())
    throw std::invalid_argument("CapacityMonitor: needs >= 1 synopsis");
}

CapacityMonitor::CapacityMonitor(std::vector<Synopsis> synopses,
                                 CoordinatedPredictor predictor)
    : synopses_(std::move(synopses)), predictor_(std::move(predictor)) {
  if (synopses_.empty())
    throw std::invalid_argument("CapacityMonitor: needs >= 1 synopsis");
  if (predictor_.options().num_synopses !=
      static_cast<int>(synopses_.size()))
    throw std::invalid_argument(
        "CapacityMonitor: predictor GPV width != synopsis count");
}

const std::vector<int>& CapacityMonitor::fill_votes(
    const std::vector<std::vector<double>>& tier_rows) {
  votes_scratch_.clear();
  votes_scratch_.reserve(synopses_.size());
  for (const auto& syn : synopses_) {
    const auto t = static_cast<std::size_t>(syn.spec().tier_index);
    if (t >= tier_rows.size())
      throw std::out_of_range("CapacityMonitor: missing tier row");
    votes_scratch_.push_back(syn.predict(tier_rows[t]));
  }
  return votes_scratch_;
}

std::vector<int> CapacityMonitor::synopsis_votes(
    const std::vector<std::vector<double>>& tier_rows) const {
  std::vector<int> votes;
  votes.reserve(synopses_.size());
  for (const auto& syn : synopses_) {
    const auto t = static_cast<std::size_t>(syn.spec().tier_index);
    if (t >= tier_rows.size())
      throw std::out_of_range("CapacityMonitor: missing tier row");
    votes.push_back(syn.predict(tier_rows[t]));
  }
  return votes;
}

void CapacityMonitor::train_instance(
    const std::vector<std::vector<double>>& tier_rows, int label,
    int bottleneck_tier, bool teacher_forced) {
  predictor_.train(fill_votes(tier_rows), label, bottleneck_tier,
                   teacher_forced);
}

void CapacityMonitor::end_training_run() { predictor_.reset_history(); }

CoordinatedPredictor::Decision CapacityMonitor::observe(
    const std::vector<std::vector<double>>& tier_rows) {
  return predictor_.predict(fill_votes(tier_rows));
}

void CapacityMonitor::observe_many(
    const WindowBlock& block, std::span<CoordinatedPredictor::Decision> out) {
  observe_block(block, nullptr, /*masked=*/false, out);
}

void CapacityMonitor::predict_masked_many(
    const WindowBlock& block, const std::uint8_t* valid,
    std::span<CoordinatedPredictor::Decision> out) {
  observe_block(block, valid, /*masked=*/true, out);
}

void CapacityMonitor::predict_masked_many(
    const WindowBlock& block, const std::uint8_t* valid,
    std::span<CoordinatedPredictor::Decision> out, int* votes_out,
    std::uint8_t* votes_valid_out) {
  observe_block(block, valid, /*masked=*/true, out, votes_out,
                votes_valid_out);
}

CoordinatedPredictor::Decision CapacityMonitor::decide_votes_masked(
    std::span<const int> votes, std::span<const std::uint8_t> valid) {
  return predictor_.predict_masked(votes, valid);
}

// hpcap-lint: hot-path
void CapacityMonitor::observe_block(
    const WindowBlock& block, const std::uint8_t* valid, bool masked,
    std::span<CoordinatedPredictor::Decision> out, int* votes_out,
    std::uint8_t* votes_valid_out) {
  const std::size_t W = block.num_windows;
  const std::size_t T = block.num_tiers;
  const std::size_t m = synopses_.size();
  if (out.size() < W)
    throw std::invalid_argument("CapacityMonitor: output span too small");
  if (W == 0) return;
  if (block.data == nullptr || T == 0 || block.dim == 0)
    throw std::invalid_argument("CapacityMonitor: empty window block");

  // Stage 1 — synopsis-major vote fill: each synopsis projects and scores
  // every window of its tier in one batch-kernel call. Invalid windows'
  // vote slots stay 0, matching observe_masked's abstention convention.
  votes_block_.assign(m * W, 0);
  if (masked) valid_block_.resize(m * W);
  for (std::size_t s = 0; s < m; ++s) {
    const auto t = static_cast<std::size_t>(synopses_[s].spec().tier_index);
    if (t >= T) throw std::out_of_range("CapacityMonitor: missing tier row");
    const std::uint8_t* valid_col = nullptr;
    if (masked) {
      std::uint8_t* vc = valid_block_.data() + s * W;
      if (valid) {
        for (std::size_t w = 0; w < W; ++w) vc[w] = valid[w * T + t] ? 1 : 0;
      } else {
        std::fill(vc, vc + W, std::uint8_t{1});
      }
      valid_col = vc;
    }
    synopses_[s].predict_many(block.data + t * block.dim, T * block.dim,
                              block.dim, W, valid_col,
                              votes_block_.data() + s * W);
  }

  // Stage 2 — the coordinated predictor is stateful (h-bit history
  // register, staleness), so windows feed it sequentially in block order;
  // this reproduces the scalar path's history evolution exactly.
  votes_scratch_.resize(m);
  if (masked) valid_scratch_.resize(m);
  for (std::size_t w = 0; w < W; ++w) {
    for (std::size_t s = 0; s < m; ++s)
      votes_scratch_[s] = votes_block_[s * W + w];
    if (masked) {
      for (std::size_t s = 0; s < m; ++s)
        valid_scratch_[s] = valid_block_[s * W + w];
      out[w] = predictor_.predict_masked(votes_scratch_, valid_scratch_);
    } else {
      out[w] = predictor_.predict(votes_scratch_);
    }
    if (votes_out != nullptr) {
      // Window-major transpose of the GPV this window was decided from,
      // for fleet uplink (see the header). Abstentions export as (0, 0).
      for (std::size_t s = 0; s < m; ++s) {
        votes_out[w * m + s] = votes_scratch_[s];
        votes_valid_out[w * m + s] = masked ? valid_scratch_[s] : 1;
      }
    }
  }
}

CoordinatedPredictor::Decision CapacityMonitor::observe_masked(
    const std::vector<std::vector<double>>& tier_rows,
    const std::vector<std::uint8_t>& tier_valid) {
  votes_scratch_.assign(synopses_.size(), 0);
  valid_scratch_.assign(synopses_.size(), 0);
  for (std::size_t s = 0; s < synopses_.size(); ++s) {
    const auto t = static_cast<std::size_t>(synopses_[s].spec().tier_index);
    if (t >= tier_rows.size() || t >= tier_valid.size())
      throw std::out_of_range("CapacityMonitor: missing tier row");
    if (tier_valid[t]) {
      // Only validated rows reach a classifier; an abstaining synopsis's
      // vote slot stays 0 and is masked out of the GPV.
      votes_scratch_[s] = synopses_[s].predict(tier_rows[t]);
      valid_scratch_[s] = 1;
    }
  }
  return predictor_.predict_masked(votes_scratch_, valid_scratch_);
}

}  // namespace hpcap::core
