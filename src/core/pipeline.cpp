#include "core/pipeline.h"

#include <stdexcept>
#include <utility>

#include "util/parallel.h"

namespace hpcap::core {

std::vector<Synopsis> build_synopsis_bank(const SynopsisBuilder& builder,
                                          std::vector<SynopsisTask> tasks) {
  return util::parallel_map(tasks.size(), [&](std::size_t i) {
    return builder.build(tasks[i].training, tasks[i].spec);
  });
}

namespace {
CoordinatedPredictor::Options patch_options(
    CoordinatedPredictor::Options opts, std::size_t num_synopses) {
  opts.num_synopses = static_cast<int>(num_synopses);
  return opts;
}
}  // namespace

CapacityMonitor::CapacityMonitor(std::vector<Synopsis> synopses,
                                 CoordinatedPredictor::Options options)
    : synopses_(std::move(synopses)),
      predictor_(patch_options(options, synopses_.size())) {
  if (synopses_.empty())
    throw std::invalid_argument("CapacityMonitor: needs >= 1 synopsis");
}

CapacityMonitor::CapacityMonitor(std::vector<Synopsis> synopses,
                                 CoordinatedPredictor predictor)
    : synopses_(std::move(synopses)), predictor_(std::move(predictor)) {
  if (synopses_.empty())
    throw std::invalid_argument("CapacityMonitor: needs >= 1 synopsis");
  if (predictor_.options().num_synopses !=
      static_cast<int>(synopses_.size()))
    throw std::invalid_argument(
        "CapacityMonitor: predictor GPV width != synopsis count");
}

std::vector<int> CapacityMonitor::synopsis_votes(
    const std::vector<std::vector<double>>& tier_rows) const {
  std::vector<int> votes;
  votes.reserve(synopses_.size());
  for (const auto& syn : synopses_) {
    const auto t = static_cast<std::size_t>(syn.spec().tier_index);
    if (t >= tier_rows.size())
      throw std::out_of_range("CapacityMonitor: missing tier row");
    votes.push_back(syn.predict(tier_rows[t]));
  }
  return votes;
}

void CapacityMonitor::train_instance(
    const std::vector<std::vector<double>>& tier_rows, int label,
    int bottleneck_tier, bool teacher_forced) {
  predictor_.train(synopsis_votes(tier_rows), label, bottleneck_tier,
                   teacher_forced);
}

void CapacityMonitor::end_training_run() { predictor_.reset_history(); }

CoordinatedPredictor::Decision CapacityMonitor::observe(
    const std::vector<std::vector<double>>& tier_rows) {
  return predictor_.predict(synopsis_votes(tier_rows));
}

CoordinatedPredictor::Decision CapacityMonitor::observe_masked(
    const std::vector<std::vector<double>>& tier_rows,
    const std::vector<std::uint8_t>& tier_valid) {
  std::vector<int> votes(synopses_.size(), 0);
  std::vector<std::uint8_t> valid(synopses_.size(), 0);
  for (std::size_t s = 0; s < synopses_.size(); ++s) {
    const auto t = static_cast<std::size_t>(synopses_[s].spec().tier_index);
    if (t >= tier_rows.size() || t >= tier_valid.size())
      throw std::out_of_range("CapacityMonitor: missing tier row");
    if (tier_valid[t]) {
      // Only validated rows reach a classifier; an abstaining synopsis's
      // vote slot stays 0 and is masked out of the GPV.
      votes[s] = synopses_[s].predict(tier_rows[t]);
      valid[s] = 1;
    }
  }
  return predictor_.predict_masked(votes, valid);
}

}  // namespace hpcap::core
