#include "core/admission.h"

#include <algorithm>
#include <cmath>

namespace hpcap::core {

AdmissionOptions AdmissionOptions::sanitized() const noexcept {
  const AdmissionOptions defaults;
  const auto finite_or = [](double v, double fallback) noexcept {
    return std::isfinite(v) ? v : fallback;
  };
  AdmissionOptions o = *this;
  o.decrease_factor = std::clamp(
      finite_or(o.decrease_factor, defaults.decrease_factor), 1e-6, 1.0);
  o.increase_step = std::clamp(
      finite_or(o.increase_step, defaults.increase_step), 0.0, 1.0);
  o.min_admit =
      std::clamp(finite_or(o.min_admit, defaults.min_admit), 0.0, 1.0);
  return o;
}

void AdmissionController::on_decision(bool overloaded) {
  if (overloaded)
    admit_prob_ = std::max(opts_.min_admit,
                           admit_prob_ * opts_.decrease_factor);
  else
    admit_prob_ = std::min(1.0, admit_prob_ + opts_.increase_step);
}

bool AdmissionController::admit(Rng& rng) {
  const bool ok = rng.bernoulli(admit_prob_);
  ok ? ++admitted_ : ++rejected_;
  return ok;
}

}  // namespace hpcap::core
