#include "core/admission.h"

#include <algorithm>

namespace hpcap::core {

void AdmissionController::on_decision(bool overloaded) {
  if (overloaded)
    admit_prob_ = std::max(opts_.min_admit,
                           admit_prob_ * opts_.decrease_factor);
  else
    admit_prob_ = std::min(1.0, admit_prob_ + opts_.increase_step);
}

bool AdmissionController::admit(Rng& rng) {
  const bool ok = rng.bernoulli(admit_prob_);
  ok ? ++admitted_ : ++rejected_;
  return ok;
}

}  // namespace hpcap::core
