#include "core/productivity.h"

#include <stdexcept>

#include "util/stats.h"

namespace hpcap::core {

double PiDefinition::compute(std::span<const double> metrics) const {
  const double yield = metrics[yield_index];
  const double cost = metrics[cost_index];
  if (cost <= 0.0) return 0.0;
  return yield / cost;
}

std::vector<PiDefinition> standard_pi_candidates() {
  using namespace hpcap::counters;
  return {
      {"ipc/l2_miss_rate", kHpcIpc, kHpcL2MissRate},
      {"ipc/stall_fraction", kHpcIpc, kHpcStallFraction},
      {"ipc/l2_miss_per_kinstr", kHpcIpc, kHpcL2MissPerKInstr},
      {"uops/stall_fraction", kHpcUopsPerCycle, kHpcStallFraction},
  };
}

std::vector<double> pi_series(const std::vector<std::vector<double>>& samples,
                              const PiDefinition& def) {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(def.compute(s));
  return out;
}

PiSelection select_pi(
    const std::vector<std::vector<std::vector<double>>>& tier_samples,
    std::span<const double> reference,
    const std::vector<PiDefinition>& candidates) {
  if (tier_samples.empty() || candidates.empty())
    throw std::invalid_argument("select_pi: nothing to select from");
  PiSelection best;
  best.corr = -2.0;
  for (std::size_t t = 0; t < tier_samples.size(); ++t) {
    for (const auto& def : candidates) {
      const std::vector<double> pi = pi_series(tier_samples[t], def);
      const double corr = pearson(pi, reference);
      if (corr > best.corr) {
        best.definition = def;
        best.tier = static_cast<int>(t);
        best.corr = corr;
      }
    }
  }
  return best;
}

}  // namespace hpcap::core
