// Offline labeling of system state for synopsis training.
//
// The paper derives its binary "overload" ground truth from offline stress
// testing: drive the site with a ramp until application-level healthiness
// is lost, then classify every sampling window (§II.A). Two labelers:
//
//  * HealthLabeler — application-level: a window is overloaded when the
//    mean response time breaks the SLA or delivered throughput falls below
//    a fraction of the peak achieved at lower load. This is the ground
//    truth used to train and score every experiment.
//  * PiThresholdLabeler — hardware-level: thresholds a PI series at a
//    value calibrated from an offline stress run (used online when no
//    application-level telemetry is available, and by the Fig. 3 bench to
//    show PI tracks throughput).
//
// Plus knee detection on a (load, throughput) curve to locate the
// saturation point of a ramp.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hpcap::core {

// Application-level telemetry for one labeling window.
struct WindowHealth {
  double mean_response_time = 0.0;  // seconds
  double throughput = 0.0;          // completed requests / second
  double offered_rate = 0.0;        // requests issued / second
};

struct HealthPolicy {
  // A window whose mean response time exceeds this is overloaded.
  double response_time_sla = 1.5;
  // ...or whose throughput dropped below this fraction of the peak
  // delivered earlier in the run (post-saturation degradation). This rule
  // only applies while demand actually exceeds delivery (offered >
  // throughput); low throughput under light offered load is idleness, not
  // overload.
  double throughput_floor = 0.80;
  // Peaks are tracked with this EWMA weight to damp single-window spikes.
  double peak_smoothing = 0.3;
};

class HealthLabeler {
 public:
  explicit HealthLabeler(HealthPolicy policy = HealthPolicy())
      : policy_(policy) {}

  // Labels one window (1 = overloaded); stateful because the throughput
  // floor is relative to the running peak.
  int label(const WindowHealth& w);

  // Labels a whole run.
  std::vector<int> label_all(std::span<const WindowHealth> windows);

  void reset() { peak_ = 0.0; }
  double peak_throughput() const noexcept { return peak_; }

 private:
  HealthPolicy policy_;
  double peak_ = 0.0;
};

// Index of the saturation knee of a monotone-load ramp: the first point
// where the local throughput slope falls below `slope_fraction` of the
// initial slope. Returns xs.size()-1 if no knee is found. Requires at
// least 3 points.
std::size_t find_knee(std::span<const double> load,
                      std::span<const double> throughput,
                      double slope_fraction = 0.25);

// PI threshold calibrated from a stress run: the `quantile`-quantile of PI
// values observed in windows labeled overloaded (by the health labeler).
// A window is then predicted overloaded when PI < threshold.
class PiThresholdLabeler {
 public:
  // Calibrates from aligned series. Throws if no window of either class.
  PiThresholdLabeler(std::span<const double> pi,
                     std::span<const int> health_labels,
                     double quantile = 0.8);

  double threshold() const noexcept { return threshold_; }
  int label(double pi_value) const noexcept {
    return pi_value < threshold_ ? 1 : 0;
  }

 private:
  double threshold_;
};

}  // namespace hpcap::core
