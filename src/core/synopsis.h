// Performance synopses (§II.B): SYN({A1..An}, C) — a trained correlation
// between a tier's low-level metric vector and the binary system state,
// specific to one (tier, workload, metric level) combination.
//
// A Synopsis owns its attribute selection: it is built on the *full*
// metric catalog of its level, performs info-gain + forward selection, and
// afterwards accepts full-width rows at prediction time, projecting to its
// selected attributes internally. That keeps the online pipeline trivially
// uniform: every component exchanges full catalog-layout vectors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "ml/dataset.h"
#include "ml/feature_select.h"

namespace hpcap::core {

struct SynopsisSpec {
  std::string workload;  // training mix name, e.g. "ordering"
  std::string tier;      // e.g. "app", "db"
  int tier_index = 0;
  std::string level;     // "hpc" or "os"
  ml::LearnerKind learner = ml::LearnerKind::kTan;
};

class Synopsis {
 public:
  Synopsis(SynopsisSpec spec, std::vector<std::size_t> attributes,
           std::vector<std::string> attribute_names,
           std::unique_ptr<ml::Classifier> classifier);

  Synopsis(Synopsis&&) noexcept = default;
  Synopsis& operator=(Synopsis&&) noexcept = default;

  const SynopsisSpec& spec() const noexcept { return spec_; }
  const std::vector<std::size_t>& attributes() const noexcept {
    return attributes_;
  }
  const std::vector<std::string>& attribute_names() const noexcept {
    return attribute_names_;
  }
  const ml::Classifier& classifier() const noexcept { return *classifier_; }

  // `full_row` is in the level's full catalog layout.
  int predict(std::span<const double> full_row) const;
  double predict_score(std::span<const double> full_row) const;

  // Batched predict over `count` full-catalog rows starting at `rows`,
  // consecutive rows `row_stride` doubles apart, each `row_width` wide.
  // valid (may be nullptr = all valid) gates each row; votes[w] is written
  // only for valid rows (invalid slots are left untouched). Valid rows'
  // projections are gathered into one contiguous block and scored with
  // the classifier's batch kernel — vote w is bit-identical to
  // predict(row w). Allocation-free after thread-local scratch warms.
  void predict_many(const double* rows, std::size_t row_stride,
                    std::size_t row_width, std::size_t count,
                    const std::uint8_t* valid, int* votes) const;

  std::string id() const;  // "ordering/app/hpc/TAN"

 private:
  // Projects the full-catalog row onto this synopsis's attributes into a
  // thread-local scratch buffer — the returned span is valid until the
  // next project() on the same thread. Keeps predict() allocation-free in
  // steady state (the observe hot path runs every sampling interval).
  std::span<const double> project(std::span<const double> full_row) const;

  SynopsisSpec spec_;
  std::vector<std::size_t> attributes_;
  std::vector<std::string> attribute_names_;
  std::unique_ptr<ml::Classifier> classifier_;
};

struct SynopsisBuilderOptions {
  ml::FeatureSelectOptions selection;
  bool use_feature_selection = true;
  std::uint64_t seed = 17;
};

// Builds a synopsis from a full-catalog training set.
class SynopsisBuilder {
 public:
  explicit SynopsisBuilder(
      SynopsisBuilderOptions opts = SynopsisBuilderOptions())
      : opts_(opts) {}

  Synopsis build(const ml::Dataset& training, SynopsisSpec spec) const;

 private:
  SynopsisBuilderOptions opts_;
};

}  // namespace hpcap::core
