#include "core/validate.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hpcap::core {

RowValidator::RowValidator(Options opts) : opts_(opts) {
  if (opts_.max_abs <= 0.0)
    throw std::invalid_argument("RowValidator: max_abs must be > 0");
  if (opts_.fit_margin < 0.0)
    throw std::invalid_argument("RowValidator: fit_margin must be >= 0");
}

void RowValidator::fit(const ml::Dataset& training) {
  if (training.empty())
    throw std::invalid_argument("RowValidator::fit: empty training set");
  const std::size_t dim = training.dim();
  std::vector<double> lo(dim, 0.0), hi(dim, 0.0);
  for (std::size_t i = 0; i < training.size(); ++i) {
    const auto row = training.row(i);
    for (std::size_t a = 0; a < dim; ++a) {
      if (i == 0 || row[a] < lo[a]) lo[a] = row[a];
      if (i == 0 || row[a] > hi[a]) hi[a] = row[a];
    }
  }
  if (!lo_.empty() && lo_.size() != dim)
    throw std::invalid_argument("RowValidator::fit: dimension changed");
  const bool merge = !lo_.empty();
  lo_.resize(dim);
  hi_.resize(dim);
  for (std::size_t a = 0; a < dim; ++a) {
    // Widen by margin * span (with a floor so constant metrics still get
    // slack) — test traffic legitimately exceeds the training envelope,
    // garbage exceeds it by orders of magnitude. Repeated fit() calls
    // (e.g. one per tier's training set) take the union of the ranges.
    const double span = std::max(hi[a] - lo[a], std::abs(hi[a]) + 1.0);
    const double wlo = lo[a] - opts_.fit_margin * span;
    const double whi = hi[a] + opts_.fit_margin * span;
    lo_[a] = merge ? std::min(lo_[a], wlo) : wlo;
    hi_[a] = merge ? std::max(hi_[a], whi) : whi;
  }
  opts_.dim = dim;
}

RowVerdict RowValidator::validate(std::span<const double> row) {
  ++stats_.checked;
  if (opts_.dim != 0 && row.size() != opts_.dim) {
    ++stats_.rejected;
    ++stats_.wrong_dimension;
    return RowVerdict::kWrongDimension;
  }
  for (double v : row) {
    if (!std::isfinite(v)) {
      ++stats_.rejected;
      ++stats_.non_finite;
      return RowVerdict::kNonFinite;
    }
  }
  for (std::size_t a = 0; a < row.size(); ++a) {
    const bool absurd = std::abs(row[a]) > opts_.max_abs;
    const bool implausible =
        !lo_.empty() && a < lo_.size() &&
        (row[a] < lo_[a] || row[a] > hi_[a]);
    if (absurd || implausible) {
      ++stats_.rejected;
      ++stats_.out_of_range;
      return RowVerdict::kOutOfRange;
    }
  }
  return RowVerdict::kValid;
}

std::vector<std::uint8_t> RowValidator::validate_tiers(
    const std::vector<std::vector<double>>& tier_rows) {
  std::vector<std::uint8_t> valid(tier_rows.size(), 0);
  for (std::size_t t = 0; t < tier_rows.size(); ++t)
    valid[t] = validate(tier_rows[t]) == RowVerdict::kValid ? 1 : 0;
  return valid;
}

}  // namespace hpcap::core
