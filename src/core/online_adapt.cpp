#include "core/online_adapt.h"

namespace hpcap::core {

CoordinatedPredictor::Decision OnlineAdapter::observe(
    const std::vector<std::vector<double>>& tier_rows) {
  pending_votes_.push_back(monitor_.synopsis_votes(tier_rows));
  return monitor_.predictor().predict(pending_votes_.back());
}

void OnlineAdapter::report_truth(int label, int bottleneck_tier) {
  if (pending_votes_.empty()) return;
  monitor_.predictor().mark_outcome(pending_votes_.front(), label,
                                    bottleneck_tier);
  pending_votes_.pop_front();
}

}  // namespace hpcap::core
