#include "core/online_adapt.h"

#include <stdexcept>

#include "util/log.h"

namespace hpcap::core {

OnlineAdapter::OnlineAdapter(CapacityMonitor& monitor,
                             std::size_t max_pending)
    : monitor_(monitor), max_pending_(max_pending) {
  if (max_pending_ == 0)
    throw std::invalid_argument("OnlineAdapter: max_pending must be > 0");
}

CoordinatedPredictor::Decision OnlineAdapter::observe(
    const std::vector<std::vector<double>>& tier_rows) {
  if (pending_votes_.size() >= max_pending_) {
    pending_votes_.pop_front();
    ++shed_;
    // Warn on the first shed and then once per max_pending_ sheds — a dead
    // truth feed would otherwise emit one line per window, forever.
    if (shed_ == 1 || shed_ % max_pending_ == 0) {
      HPCAP_WARN << "OnlineAdapter: pending-truth queue full ("
                 << max_pending_ << "); shed oldest window (total shed "
                 << shed_ << ") — is the ground-truth feed stalled?";
    }
  }
  pending_votes_.push_back(monitor_.synopsis_votes(tier_rows));
  return monitor_.predictor().predict(pending_votes_.back());
}

void OnlineAdapter::report_truth(int label, int bottleneck_tier) {
  if (pending_votes_.empty()) return;
  monitor_.predictor().mark_outcome(pending_votes_.front(), label,
                                    bottleneck_tier);
  pending_votes_.pop_front();
}

}  // namespace hpcap::core
