#include "core/synopsis.h"

#include <numeric>
#include <stdexcept>
#include <utility>

namespace hpcap::core {

Synopsis::Synopsis(SynopsisSpec spec, std::vector<std::size_t> attributes,
                   std::vector<std::string> attribute_names,
                   std::unique_ptr<ml::Classifier> classifier)
    : spec_(std::move(spec)),
      attributes_(std::move(attributes)),
      attribute_names_(std::move(attribute_names)),
      classifier_(std::move(classifier)) {
  if (!classifier_ || !classifier_->fitted())
    throw std::invalid_argument("Synopsis: requires a fitted classifier");
  if (attributes_.empty())
    throw std::invalid_argument("Synopsis: requires >= 1 attribute");
}

std::span<const double> Synopsis::project(
    std::span<const double> full_row) const {
  thread_local std::vector<double> out;
  out.clear();
  out.reserve(attributes_.size());
  for (std::size_t a : attributes_) {
    if (a >= full_row.size())
      throw std::out_of_range("Synopsis: row narrower than catalog");
    out.push_back(full_row[a]);
  }
  return out;
}

int Synopsis::predict(std::span<const double> full_row) const {
  return classifier_->predict(project(full_row));
}

double Synopsis::predict_score(std::span<const double> full_row) const {
  return classifier_->predict_score(project(full_row));
}

// hpcap-lint: hot-path
void Synopsis::predict_many(const double* rows, std::size_t row_stride,
                            std::size_t row_width, std::size_t count,
                            const std::uint8_t* valid, int* votes) const {
  const std::size_t nattr = attributes_.size();
  static thread_local std::vector<double> proj;
  static thread_local std::vector<double> scores;
  static thread_local std::vector<std::uint32_t> idx;
  proj.resize(count * nattr);
  scores.resize(count);
  idx.resize(count);
  // Gather the valid rows' projections into one dense block so the
  // classifier's batch kernel sees contiguous row-major input.
  std::size_t k = 0;
  for (std::size_t w = 0; w < count; ++w) {
    if (valid && !valid[w]) continue;
    const double* row = rows + w * row_stride;
    double* out = proj.data() + k * nattr;
    for (std::size_t j = 0; j < nattr; ++j) {
      const std::size_t a = attributes_[j];
      if (a >= row_width)
        throw std::out_of_range("Synopsis: row narrower than catalog");
      out[j] = row[a];
    }
    idx[k++] = static_cast<std::uint32_t>(w);
  }
  if (k == 0) return;
  classifier_->predict_score_many(proj.data(), nattr, k, scores.data());
  for (std::size_t i = 0; i < k; ++i)
    votes[idx[i]] = scores[i] >= 0.5 ? 1 : 0;
}

std::string Synopsis::id() const {
  return spec_.workload + "/" + spec_.tier + "/" + spec_.level + "/" +
         classifier_->name();
}

Synopsis SynopsisBuilder::build(const ml::Dataset& training,
                                SynopsisSpec spec) const {
  if (training.positives() == 0 || training.negatives() == 0)
    throw std::invalid_argument(
        "SynopsisBuilder: training set must contain both states "
        "(stress the system past saturation when collecting it)");
  auto prototype = ml::make_learner(spec.learner);

  std::vector<std::size_t> attrs;
  if (opts_.use_feature_selection) {
    Rng rng(opts_.seed);
    attrs = ml::forward_select(*prototype, training, opts_.selection, rng);
  }
  if (attrs.empty()) {
    // Degenerate selection: fall back to the full attribute set.
    attrs.resize(training.dim());
    std::iota(attrs.begin(), attrs.end(), std::size_t{0});
  }

  const ml::Dataset projected = training.project(attrs);
  auto clf = ml::make_learner(spec.learner);
  clf->fit(projected);

  std::vector<std::string> names;
  names.reserve(attrs.size());
  for (std::size_t a : attrs) names.push_back(training.attribute_names()[a]);
  return Synopsis(std::move(spec), std::move(attrs), std::move(names),
                  std::move(clf));
}

}  // namespace hpcap::core
