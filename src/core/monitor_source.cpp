#include "core/monitor_source.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/model_io.h"

namespace hpcap::core {

namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f)
    throw std::runtime_error("MonitorSource: cannot open '" + path + "'");
  std::ostringstream ss;
  ss << f.rdbuf();
  if (!f && !f.eof())
    throw std::runtime_error("MonitorSource: error reading '" + path + "'");
  return std::move(ss).str();
}

// Validation = a full parse. Throws std::runtime_error on anything that
// load_monitor rejects (truncation, corruption, hostile counts).
void validate_bundle(const std::string& bytes) {
  std::istringstream is(bytes);
  (void)load_monitor(is);
}

}  // namespace

MonitorSource::MonitorSource(std::string path, std::string bytes)
    : path_(std::move(path)) {
  validate_bundle(bytes);
  bytes_ = std::make_shared<const std::string>(std::move(bytes));
}

MonitorSource::MonitorSource(MonitorSource&& other) noexcept {
  util::MutexLock lock(&other.mu_);
  bytes_ = std::move(other.bytes_);
  version_ = other.version_;
  path_ = std::move(other.path_);
}

MonitorSource MonitorSource::from_file(const std::string& path) {
  return MonitorSource(path, read_file(path));
}

MonitorSource MonitorSource::from_bytes(std::string bytes) {
  return MonitorSource("", std::move(bytes));
}

MonitorSource MonitorSource::from_monitor(const CapacityMonitor& monitor) {
  std::ostringstream os;
  save_monitor(os, monitor);
  return MonitorSource("", std::move(os).str());
}

CapacityMonitor MonitorSource::instantiate() const {
  std::shared_ptr<const std::string> snapshot;
  {
    util::MutexLock lock(&mu_);
    snapshot = bytes_;
  }
  // Parse outside the lock: loading is the expensive part and the
  // snapshot is immutable.
  std::istringstream is(*snapshot);
  return load_monitor(is);
}

void MonitorSource::swap_from_file(const std::string& path) {
  std::string target = path;
  if (target.empty()) {
    util::MutexLock lock(&mu_);
    target = path_;
  }
  if (target.empty())
    throw std::runtime_error(
        "MonitorSource: no path to reload (in-memory source)");
  std::string bytes = read_file(target);
  validate_bundle(bytes);
  util::MutexLock lock(&mu_);
  bytes_ = std::make_shared<const std::string>(std::move(bytes));
  path_ = std::move(target);
  ++version_;
}

void MonitorSource::swap_bytes(std::string bytes) {
  validate_bundle(bytes);
  util::MutexLock lock(&mu_);
  bytes_ = std::make_shared<const std::string>(std::move(bytes));
  ++version_;
}

std::uint32_t MonitorSource::version() const {
  util::MutexLock lock(&mu_);
  return version_;
}

std::shared_ptr<const std::string> MonitorSource::bytes() const {
  util::MutexLock lock(&mu_);
  return bytes_;
}

std::string MonitorSource::path() const {
  util::MutexLock lock(&mu_);
  return path_;
}

}  // namespace hpcap::core
