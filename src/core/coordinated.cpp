#include "core/coordinated.h"

#include <algorithm>
#include <stdexcept>

namespace hpcap::core {

CoordinatedPredictor::CoordinatedPredictor(Options opts) : opts_(opts) {
  if (opts_.num_synopses < 1 || opts_.num_synopses > 16)
    throw std::invalid_argument(
        "CoordinatedPredictor: num_synopses must be in [1, 16]");
  if (opts_.num_tiers < 1)
    throw std::invalid_argument("CoordinatedPredictor: need >= 1 tier");
  if (opts_.history_bits < 0 || opts_.history_bits > 12)
    throw std::invalid_argument(
        "CoordinatedPredictor: history_bits must be in [0, 12]");
  if (opts_.delta < 0)
    throw std::invalid_argument("CoordinatedPredictor: delta must be >= 0");
  hc_cap_ = opts_.hc_saturation > 0 ? opts_.hc_saturation
                                    : 2 * opts_.delta + 2;
  const std::size_t gpt_entries = std::size_t{1}
                                  << opts_.num_synopses;
  const std::size_t lht_entries = std::size_t{1} << opts_.history_bits;
  history_mask_ = lht_entries - 1;
  lht_.assign(gpt_entries * lht_entries, 0);
  touched_.assign(gpt_entries * lht_entries, 0);
  bpt_.assign(gpt_entries * static_cast<std::size_t>(opts_.num_tiers), 0.0);
  global_bv_.assign(static_cast<std::size_t>(opts_.num_tiers), 0.0);
  tier_votes_scratch_.assign(static_cast<std::size_t>(opts_.num_tiers), 0);
}

std::size_t CoordinatedPredictor::pack_gpv(std::span<const int> predictions) {
  std::size_t gpv = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i)
    if (predictions[i]) gpv |= std::size_t{1} << i;
  return gpv;
}

void CoordinatedPredictor::push_history(int outcome) {
  history_ = ((history_ << 1) | static_cast<std::size_t>(outcome != 0)) &
             history_mask_;
}

void CoordinatedPredictor::update_tables(std::size_t gpv, int label,
                                         int bottleneck_tier) {
  int& hc = lht_[lht_index(gpv, history_)];
  hc = label == 1 ? std::min(hc + 1, hc_cap_) : std::max(hc - 1, -hc_cap_);
  touched_[lht_index(gpv, history_)] = 1;

  // BPT training (§III.D): only overloaded instances carry bottleneck
  // information; the annotated tier's vote rises, all others fall.
  if (label == 1 && bottleneck_tier >= 0 &&
      bottleneck_tier < opts_.num_tiers) {
    double* bv = bpt_.data() + bpt_index(gpv);
    for (std::size_t t = 0;
         t < static_cast<std::size_t>(opts_.num_tiers); ++t) {
      const double delta =
          (static_cast<int>(t) == bottleneck_tier) ? 1.0 : -1.0;
      bv[t] += delta;
      global_bv_[t] += delta;
    }
  }
}

int CoordinatedPredictor::majority(std::span<const int> votes) const {
  int ones = 0;
  for (int v : votes) ones += v != 0;
  const int n = static_cast<int>(votes.size());
  if (2 * ones > n) return 1;
  if (2 * ones < n) return 0;
  return opts_.scheme == TieScheme::kPessimistic ? 1 : 0;
}

int CoordinatedPredictor::history_signal(std::span<const int> votes) const {
  if (opts_.history_source == HistorySource::kSynopsisMajority)
    return majority(votes);
  // kSynopsisAny
  for (int v : votes)
    if (v != 0) return 1;
  return 0;
}

void CoordinatedPredictor::train(std::span<const int> synopsis_predictions,
                                 int label, int bottleneck_tier,
                                 bool teacher_forced) {
  if (static_cast<int>(synopsis_predictions.size()) != opts_.num_synopses)
    throw std::invalid_argument("CoordinatedPredictor::train: GPV width");
  const std::size_t gpv = pack_gpv(synopsis_predictions);
  // With self-prediction history, closed-loop passes decide from the
  // *current* table state before the update, as online prediction would.
  const int own_decision = decide(lht_[lht_index(gpv, history_)]);
  update_tables(gpv, label, bottleneck_tier);
  if (opts_.history_source == HistorySource::kSelfPredictions)
    push_history(teacher_forced ? label : own_decision);
  else
    push_history(history_signal(synopsis_predictions));
}

void CoordinatedPredictor::reset_history() {
  history_ = 0;
  last_confident_ = Decision{};
  have_confident_ = false;
  staleness_ = 0;
}

int CoordinatedPredictor::decide(int hc_value) const {
  if (hc_value > opts_.delta) return 1;
  if (hc_value < -opts_.delta) return 0;
  return opts_.scheme == TieScheme::kPessimistic ? 1 : 0;
}

CoordinatedPredictor::Decision CoordinatedPredictor::evaluate(
    std::span<const int> synopsis_predictions) const {
  const std::size_t gpv = pack_gpv(synopsis_predictions);
  const int hc = lht_[lht_index(gpv, history_)];
  const bool trained_cell = touched_[lht_index(gpv, history_)] != 0;

  Decision d;
  d.hc = hc;
  d.confident = hc > opts_.delta || hc < -opts_.delta;
  if (!trained_cell &&
      opts_.unseen == UnseenCellPolicy::kMajorityVote) {
    // Pattern never observed in training: fall back to the synopsis
    // majority (ties resolved by the φ scheme).
    int votes = 0;
    for (int v : synopsis_predictions) votes += v != 0;
    const int half2 = static_cast<int>(synopsis_predictions.size());
    if (2 * votes > half2)
      d.state = 1;
    else if (2 * votes < half2)
      d.state = 0;
    else
      d.state = opts_.scheme == TieScheme::kPessimistic ? 1 : 0;
  } else {
    d.state = decide(hc);
  }
  if (d.state == 1) {
    const double* bv = bpt_.data() + bpt_index(gpv);
    const double* bv_end = bv + static_cast<std::size_t>(opts_.num_tiers);
    const bool bv_empty =
        std::all_of(bv, bv_end, [](double b) { return b == 0.0; });
    if (bv_empty && !opts_.synopsis_tiers.empty()) {
      // No bottleneck votes for this GPV: name the tier whose synopses
      // contributed the most positive bits; with no positive bits at all,
      // fall back to the globally most common bottleneck.
      std::vector<int>& tier_votes = tier_votes_scratch_;
      tier_votes.assign(static_cast<std::size_t>(opts_.num_tiers), 0);
      int total_votes = 0;
      for (std::size_t i = 0; i < synopsis_predictions.size() &&
                              i < opts_.synopsis_tiers.size();
           ++i) {
        const int t = opts_.synopsis_tiers[i];
        if (synopsis_predictions[i] && t >= 0 && t < opts_.num_tiers) {
          ++tier_votes[static_cast<std::size_t>(t)];
          ++total_votes;
        }
      }
      if (total_votes > 0) {
        d.bottleneck_tier = static_cast<int>(
            std::max_element(tier_votes.begin(), tier_votes.end()) -
            tier_votes.begin());
      } else {
        d.bottleneck_tier = static_cast<int>(
            std::max_element(global_bv_.begin(), global_bv_.end()) -
            global_bv_.begin());
      }
    } else {
      // λb = argmax_i b_i over the GPV's Bottleneck Vector.
      d.bottleneck_tier = static_cast<int>(std::max_element(bv, bv_end) - bv);
    }
  }
  return d;
}

void CoordinatedPredictor::note_decision(const Decision& d) {
  if (d.confident) {
    last_confident_ = d;
    have_confident_ = true;
  }
}

CoordinatedPredictor::Decision CoordinatedPredictor::predict(
    std::span<const int> synopsis_predictions) {
  if (static_cast<int>(synopsis_predictions.size()) != opts_.num_synopses)
    throw std::invalid_argument("CoordinatedPredictor::predict: GPV width");
  Decision d = evaluate(synopsis_predictions);
  push_history(opts_.history_source == HistorySource::kSelfPredictions
                   ? d.state
                   : history_signal(synopsis_predictions));
  staleness_ = 0;
  note_decision(d);
  return d;
}

CoordinatedPredictor::Decision CoordinatedPredictor::stale_fallback() {
  ++staleness_;
  Decision d;
  if (have_confident_) {
    d = last_confident_;
  } else {
    // Never had a confident decision to coast on: the φ tie scheme is the
    // only defensible default.
    d.state = opts_.scheme == TieScheme::kPessimistic ? 1 : 0;
    d.confident = false;
    d.hc = 0;
    d.bottleneck_tier = -1;
  }
  d.degraded = true;
  d.staleness = staleness_;
  return d;
}

CoordinatedPredictor::Decision CoordinatedPredictor::predict_masked(
    std::span<const int> synopsis_predictions,
    std::span<const std::uint8_t> valid) {
  if (static_cast<int>(synopsis_predictions.size()) != opts_.num_synopses ||
      valid.size() != synopsis_predictions.size())
    throw std::invalid_argument(
        "CoordinatedPredictor::predict_masked: GPV/mask width");

  // Member scratch throughout: the degraded path runs every interval when
  // a tier's samples go missing, so it must not allocate in steady state.
  std::vector<std::size_t>& masked = masked_scratch_;
  masked.clear();
  for (std::size_t i = 0; i < valid.size(); ++i)
    if (!valid[i]) masked.push_back(i);
  if (masked.empty()) return predict(synopsis_predictions);
  if (masked.size() == valid.size()) return stale_fallback();

  // GPV masking: consult the tables under every completion of the unknown
  // bits (m <= 16, and in practice only a tier's worth of bits is masked,
  // so the enumeration is tiny). A consensus across completions means the
  // corrupted synopses could not have changed the answer.
  std::vector<int>& completed = completed_scratch_;
  completed.assign(synopsis_predictions.begin(), synopsis_predictions.end());
  for (std::size_t i : masked) completed[i] = 0;
  Decision base = evaluate(completed);
  bool consensus = true;
  for (std::size_t code = 1;
       consensus && code < (std::size_t{1} << masked.size()); ++code) {
    for (std::size_t b = 0; b < masked.size(); ++b)
      completed[masked[b]] = (code >> b) & 1 ? 1 : 0;
    if (evaluate(completed).state != base.state) consensus = false;
  }
  if (!consensus) return stale_fallback();

  // Fresh, data-grounded decision: advance the history register on the
  // valid bits only (an abstained synopsis cannot have "fired").
  std::vector<int>& valid_votes = valid_votes_scratch_;
  valid_votes.clear();
  for (std::size_t i = 0; i < valid.size(); ++i)
    if (valid[i]) valid_votes.push_back(synopsis_predictions[i]);
  push_history(opts_.history_source == HistorySource::kSelfPredictions
                   ? base.state
                   : history_signal(valid_votes));
  staleness_ = 0;
  note_decision(base);
  base.degraded = true;
  return base;
}

void CoordinatedPredictor::mark_outcome(
    std::span<const int> synopsis_predictions, int label,
    int bottleneck_tier) {
  if (static_cast<int>(synopsis_predictions.size()) != opts_.num_synopses)
    throw std::invalid_argument(
        "CoordinatedPredictor::mark_outcome: GPV width");
  update_tables(pack_gpv(synopsis_predictions), label, bottleneck_tier);
}

int CoordinatedPredictor::hc(std::size_t gpv, std::size_t history) const {
  if (gpv >= gpt_size() || history >= lht_size())
    throw std::out_of_range("CoordinatedPredictor::hc: index");
  return lht_[lht_index(gpv, history)];
}

std::vector<double> CoordinatedPredictor::bottleneck_votes(
    std::size_t gpv) const {
  if (gpv >= gpt_size())
    throw std::out_of_range("CoordinatedPredictor::bottleneck_votes: gpv");
  const double* bv = bpt_.data() + bpt_index(gpv);
  return std::vector<double>(
      bv, bv + static_cast<std::size_t>(opts_.num_tiers));
}

}  // namespace hpcap::core
