#include "core/model_io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "ml/serialize.h"

namespace hpcap::core {

using namespace ml::io;

namespace {
ml::LearnerKind kind_from_name(const std::string& name) {
  if (name == "LR") return ml::LearnerKind::kLinearRegression;
  if (name == "Naive") return ml::LearnerKind::kNaiveBayes;
  if (name == "SVM") return ml::LearnerKind::kSvm;
  if (name == "TAN") return ml::LearnerKind::kTan;
  throw std::runtime_error("model_io: unknown learner '" + name + "'");
}
}  // namespace

void save_synopsis(std::ostream& os, const Synopsis& synopsis) {
  write_tag(os, "synopsis");
  write_tag(os, "v1");
  const auto& spec = synopsis.spec();
  write_string(os, spec.workload);
  write_string(os, spec.tier);
  os << spec.tier_index << ' ';
  write_string(os, spec.level);
  write_size(os, synopsis.attributes().size());
  for (std::size_t a : synopsis.attributes()) write_size(os, a);
  for (const auto& n : synopsis.attribute_names()) write_string(os, n);
  ml::save_classifier(os, synopsis.classifier());
}

// Structural ceilings for hostile-input checks (see ml/serialize.cpp):
// a corrupt count must fail with a clear error, not drive the allocator.
constexpr std::size_t kMaxSynopsisAttrs = 1 << 12;
constexpr std::size_t kMaxMonitorSynopses = 256;
constexpr int kMaxPredictorTiers = 64;

Synopsis load_synopsis(std::istream& is) {
  expect_tag(is, "synopsis");
  expect_tag(is, "v1");
  SynopsisSpec spec;
  spec.workload = read_string(is);
  spec.tier = read_string(is);
  if (!(is >> spec.tier_index))
    throw std::runtime_error("load_synopsis: tier index");
  if (spec.tier_index < 0 || spec.tier_index >= kMaxPredictorTiers)
    throw std::runtime_error("load_synopsis: tier index out of range");
  spec.level = read_string(is);
  std::vector<std::size_t> attrs(
      read_count(is, kMaxSynopsisAttrs, "synopsis attribute"));
  for (auto& a : attrs) a = read_size(is);
  std::vector<std::string> names(attrs.size());
  for (auto& n : names) n = read_string(is);
  auto clf = ml::load_classifier(is);
  spec.learner = kind_from_name(clf->name());
  return Synopsis(std::move(spec), std::move(attrs), std::move(names),
                  std::move(clf));
}

void CoordinatedPredictor::save(std::ostream& os) const {
  write_tag(os, "predictor");
  write_tag(os, "v1");
  os << opts_.num_synopses << ' ' << opts_.num_tiers << ' '
     << opts_.history_bits << ' ' << opts_.delta << ' '
     << (opts_.scheme == TieScheme::kPessimistic ? 1 : 0) << ' '
     << opts_.hc_saturation << ' '
     << static_cast<int>(opts_.unseen) << ' '
     << static_cast<int>(opts_.history_source) << ' ';
  write_size(os, opts_.synopsis_tiers.size());
  for (int t : opts_.synopsis_tiers) os << t << ' ';
  // The tables are stored flat in row-major (gpv-major) order, which is
  // exactly the v1 on-disk order — one linear sweep each.
  for (int hc : lht_) os << hc << ' ';
  for (int t : touched_) os << t << ' ';
  for (double b : bpt_) write_double(os, b);
  for (double b : global_bv_) write_double(os, b);
  os << history_ << ' ';
}

CoordinatedPredictor CoordinatedPredictor::load(std::istream& is) {
  expect_tag(is, "predictor");
  expect_tag(is, "v1");
  Options opts;
  int scheme = 0, unseen = 0, source = 0;
  if (!(is >> opts.num_synopses >> opts.num_tiers >> opts.history_bits >>
        opts.delta >> scheme >> opts.hc_saturation >> unseen >> source))
    throw std::runtime_error("load_predictor: options");
  // Validate every option that sizes a table *before* the constructor
  // runs, so a corrupt stream yields a clear runtime_error instead of an
  // invalid_argument or a gigabyte allocation.
  if (opts.num_synopses < 1 || opts.num_synopses > 16)
    throw std::runtime_error("load_predictor: num_synopses out of range");
  if (opts.num_tiers < 1 || opts.num_tiers > kMaxPredictorTiers)
    throw std::runtime_error("load_predictor: num_tiers out of range");
  if (opts.history_bits < 0 || opts.history_bits > 12)
    throw std::runtime_error("load_predictor: history_bits out of range");
  if (opts.delta < 0 || opts.delta > 1000000)
    throw std::runtime_error("load_predictor: delta out of range");
  if (opts.hc_saturation < 0 || opts.hc_saturation > 1000000)
    throw std::runtime_error("load_predictor: hc_saturation out of range");
  if (unseen < 0 || unseen > 1 || source < 0 || source > 2)
    throw std::runtime_error("load_predictor: policy out of range");
  opts.scheme = scheme ? TieScheme::kPessimistic : TieScheme::kOptimistic;
  opts.unseen = static_cast<UnseenCellPolicy>(unseen);
  opts.history_source = static_cast<HistorySource>(source);
  opts.synopsis_tiers.resize(
      read_count(is, 16, "predictor synopsis tier"));
  for (int& t : opts.synopsis_tiers)
    if (!(is >> t)) throw std::runtime_error("load_predictor: tiers");

  CoordinatedPredictor p(opts);
  for (int& hc : p.lht_)
    if (!(is >> hc)) throw std::runtime_error("load_predictor: lht");
  for (auto& t : p.touched_) {
    int v;
    if (!(is >> v)) throw std::runtime_error("load_predictor: touched");
    t = static_cast<std::uint8_t>(v);
  }
  for (double& b : p.bpt_) b = read_double(is);
  for (double& b : p.global_bv_) b = read_double(is);
  if (!(is >> p.history_))
    throw std::runtime_error("load_predictor: history");
  return p;
}

void save_predictor(std::ostream& os, const CoordinatedPredictor& p) {
  p.save(os);
}

CoordinatedPredictor load_predictor(std::istream& is) {
  return CoordinatedPredictor::load(is);
}

void save_monitor(std::ostream& os, const CapacityMonitor& monitor) {
  write_tag(os, "hpcap-monitor");
  write_tag(os, "v1");
  write_size(os, monitor.synopses().size());
  for (const auto& syn : monitor.synopses()) save_synopsis(os, syn);
  monitor.predictor().save(os);
  if (!os) throw std::runtime_error("save_monitor: stream failure");
}

CapacityMonitor load_monitor(std::istream& is) {
  expect_tag(is, "hpcap-monitor");
  expect_tag(is, "v1");
  std::vector<Synopsis> synopses;
  const std::size_t n = read_count(is, kMaxMonitorSynopses, "synopsis");
  synopses.reserve(n);
  for (std::size_t i = 0; i < n; ++i) synopses.push_back(load_synopsis(is));
  CoordinatedPredictor predictor = CoordinatedPredictor::load(is);
  return CapacityMonitor(std::move(synopses), std::move(predictor));
}

}  // namespace hpcap::core
