// Hot-swappable source of CapacityMonitor instances — the model side of
// the daemon's RELOAD / SIGHUP lifecycle.
//
// A monitor is stateful (the coordinated predictor's history register and
// stale-decision fallback evolve with the stream it watches), so live
// sessions cannot share one instance or be silently switched to a new
// model mid-stream without corrupting their temporal state. MonitorSource
// therefore holds the *serialized* model bundle (the core/model_io.h v1
// format) and hands each new session its own freshly loaded instance:
//
//   * instantiate() parses the current bundle into an independent
//     CapacityMonitor (history reset) — one per agent connection;
//   * swap_from_file()/swap_bytes() validate a replacement bundle by
//     fully loading it first, then atomically publish it; on any error
//     the current model stays untouched;
//   * version() increments on every successful swap, so agents can tell
//     which model generation their session was built from.
//
// Thread-safe: swaps and reads may race from different threads (the
// daemon's event loop vs. a signal-triggered reloader); the serialized
// bundle is immutable once published and shared by shared_ptr.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/pipeline.h"
#include "util/mutex.h"

namespace hpcap::core {

class MonitorSource {
 public:
  // Loads and validates `path` (throws std::runtime_error on unreadable
  // or malformed bundles). The path is remembered for path-less reloads.
  static MonitorSource from_file(const std::string& path);
  // Takes an in-memory bundle (e.g. save_monitor into a string).
  static MonitorSource from_bytes(std::string bytes);
  // Serializes `monitor` — convenience for tests and in-process servers.
  static MonitorSource from_monitor(const CapacityMonitor& monitor);

  MonitorSource(MonitorSource&&) noexcept;
  MonitorSource& operator=(MonitorSource&&) = delete;
  MonitorSource(const MonitorSource&) = delete;
  MonitorSource& operator=(const MonitorSource&) = delete;

  // A fresh, independent monitor parsed from the current bundle.
  CapacityMonitor instantiate() const;

  // Replaces the bundle. The replacement is fully load_monitor-ed before
  // publication: a truncated/corrupt/hostile file throws and leaves the
  // current model (and version) unchanged. `path == ""` in swap_from_file
  // re-reads the original path.
  void swap_from_file(const std::string& path = "");
  void swap_bytes(std::string bytes);

  // Monotonic model generation; starts at 1, bumps per successful swap.
  std::uint32_t version() const;
  // The current serialized bundle (immutable snapshot).
  std::shared_ptr<const std::string> bytes() const;
  // Origin file ("" for in-memory sources). Returned by value:
  // swap_from_file(path) republishes path_ under the lock, so handing
  // out a reference would race with a concurrent swap. (Found by the
  // GUARDED_BY annotation pass — the old accessor returned
  // `const std::string&` with no lock.)
  std::string path() const;

 private:
  MonitorSource(std::string path, std::string bytes);

  mutable util::Mutex mu_;
  std::shared_ptr<const std::string> bytes_ HPCAP_GUARDED_BY(mu_);
  std::uint32_t version_ HPCAP_GUARDED_BY(mu_) = 1;
  // Origin file; "" for in-memory sources.
  std::string path_ HPCAP_GUARDED_BY(mu_);
};

}  // namespace hpcap::core
