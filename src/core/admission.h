// Measurement-based admission control — the consumer the paper builds its
// capacity measurement *for* (§I: "knowledge about the server capacity can
// help a measurement-based admission controller in the front-end to
// regulate the input traffic rate so as to prevent the server from running
// in an overloaded state").
//
// An AIMD throttle on the front door: each sampling interval's coordinated
// overload decision multiplicatively lowers the admission probability;
// each underload decision additively recovers it. The admission_control
// example wires this in front of the simulated site and shows overload
// prevention end to end.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace hpcap::core {

struct AdmissionOptions {
  double decrease_factor = 0.70;  // on an overload decision
  double increase_step = 0.05;    // on an underload decision
  double min_admit = 0.05;        // never full blackout

  // Copy with every field forced into its documented domain:
  // decrease_factor in (0, 1] (a factor > 1 would *raise* the
  // probability on overload), increase_step in [0, 1], min_admit in
  // [0, 1]; non-finite fields fall back to the defaults. The controller
  // sanitizes on construction, so admit_probability() can never leave
  // [min(min_admit, 1), 1].
  AdmissionOptions sanitized() const noexcept;
};

class AdmissionController {
 public:
  using Options = AdmissionOptions;

  explicit AdmissionController(Options opts = Options())
      : opts_(opts.sanitized()) {}

  // Feed one coordinated decision (end of a sampling interval).
  void on_decision(bool overloaded);

  // Front-door gate for one arriving request.
  bool admit(Rng& rng);

  double admit_probability() const noexcept { return admit_prob_; }
  const Options& options() const noexcept { return opts_; }
  std::uint64_t admitted() const noexcept { return admitted_; }
  std::uint64_t rejected() const noexcept { return rejected_; }

 private:
  Options opts_;
  double admit_prob_ = 1.0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace hpcap::core
