#include "core/labeling.h"

#include <algorithm>
#include <stdexcept>

#include "util/stats.h"

namespace hpcap::core {

int HealthLabeler::label(const WindowHealth& w) {
  int overloaded = 0;
  if (w.mean_response_time > policy_.response_time_sla) overloaded = 1;
  // Post-saturation degradation: delivery fell below the established peak
  // while demand still exceeds it (a backlog is building).
  if (peak_ > 0.0 && w.throughput < policy_.throughput_floor * peak_ &&
      w.offered_rate > w.throughput * 1.05)
    overloaded = 1;
  // Only healthy windows raise the reference peak: a throughput spike
  // measured while drowning in queued work should not redefine capacity.
  if (!overloaded) {
    if (peak_ <= 0.0)
      peak_ = w.throughput;  // prime from the first healthy window
    else
      peak_ = std::max(peak_, peak_ + policy_.peak_smoothing *
                                          (w.throughput - peak_));
    peak_ = std::max(peak_, 0.0);
  }
  return overloaded;
}

std::vector<int> HealthLabeler::label_all(
    std::span<const WindowHealth> windows) {
  std::vector<int> labels;
  labels.reserve(windows.size());
  for (const auto& w : windows) labels.push_back(label(w));
  return labels;
}

std::size_t find_knee(std::span<const double> load,
                      std::span<const double> throughput,
                      double slope_fraction) {
  const std::size_t n = std::min(load.size(), throughput.size());
  if (n < 3) throw std::invalid_argument("find_knee: need >= 3 points");
  // Per-segment slopes; the reference is the best slope in the first half
  // (the single first segment can be flat when the ramp starts in the
  // think-time-dominated regime).
  std::vector<double> slope(n - 1, 0.0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double dx = load[i + 1] - load[i];
    slope[i] = dx != 0.0 ? (throughput[i + 1] - throughput[i]) / dx : 0.0;
  }
  double ref = 0.0;
  for (std::size_t i = 0; i < std::max<std::size_t>(1, slope.size() / 2);
       ++i)
    ref = std::max(ref, slope[i]);
  if (ref <= 0.0) return n - 1;
  // Knee: the first point whose outgoing slope collapses and stays
  // collapsed (single-segment dips are sampling noise).
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const bool flat_now = slope[i] < slope_fraction * ref;
    const bool flat_next =
        i + 2 >= n || slope[i + 1] < slope_fraction * ref;
    if (flat_now && flat_next) return i;
  }
  return n - 1;
}

PiThresholdLabeler::PiThresholdLabeler(std::span<const double> pi,
                                       std::span<const int> health_labels,
                                       double quantile)
    : threshold_(0.0) {
  const std::size_t n = std::min(pi.size(), health_labels.size());
  std::vector<double> overloaded_pi;
  std::vector<double> healthy_pi;
  for (std::size_t i = 0; i < n; ++i)
    (health_labels[i] == 1 ? overloaded_pi : healthy_pi).push_back(pi[i]);
  if (overloaded_pi.empty() || healthy_pi.empty())
    throw std::invalid_argument(
        "PiThresholdLabeler: calibration run must contain both states");
  // The threshold separating states: high quantile of overloaded PI,
  // bounded above by the median healthy PI so pathological overlap cannot
  // push the threshold into the healthy bulk.
  const double q = hpcap::quantile(overloaded_pi, quantile);
  const double healthy_median = hpcap::quantile(healthy_pi, 0.5);
  threshold_ = std::min(q, healthy_median);
}

}  // namespace hpcap::core
