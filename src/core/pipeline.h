// CapacityMonitor — the deployable unit of the paper's system (Fig. 1):
// a bank of per-(tier, workload) synopses feeding the two-level
// coordinated predictor. One monitor watches one metric level (HPC or OS).
//
// Offline: train_instance() consumes temporally ordered labeled instances
// (each a full metric row per tier); every synopsis votes, the votes form
// the GPV, and the coordinated tables learn Hc / bottleneck counters.
// Online: observe() turns the current per-tier rows into a Decision.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/coordinated.h"
#include "core/synopsis.h"

namespace hpcap::core {

// One unit of synopsis-bank construction: a (tier, workload, level,
// learner) spec plus its full-catalog training set.
struct SynopsisTask {
  ml::Dataset training;
  SynopsisSpec spec;
};

// Builds one synopsis per task, distributing tasks across the
// util/parallel.h pool — synopsis construction (forward selection
// validated by 10-fold CV, per builder per tier) is the dominant compute
// of the offline pipeline. Results are returned in task order and are
// identical at every thread count. Throws (first task error wins) if any
// build fails.
std::vector<Synopsis> build_synopsis_bank(const SynopsisBuilder& builder,
                                          std::vector<SynopsisTask> tasks);

// A contiguous row-major block of windows for batched observation:
// window w's row for tier t starts at data[(w * num_tiers + t) * dim],
// so one window is num_tiers consecutive rows and the whole block is one
// allocation-friendly slab.
struct WindowBlock {
  const double* data = nullptr;
  std::size_t num_windows = 0;
  std::size_t num_tiers = 0;
  std::size_t dim = 0;
};

class CapacityMonitor {
 public:
  // `synopses` order defines GPV bit order. Options' num_synopses is
  // overwritten to match.
  CapacityMonitor(std::vector<Synopsis> synopses,
                  CoordinatedPredictor::Options options);

  // Re-assembles a monitor from restored parts (core/model_io.h); the
  // predictor's GPV width must match the synopsis count.
  CapacityMonitor(std::vector<Synopsis> synopses,
                  CoordinatedPredictor predictor);

  // One labeled training instance; `tier_rows[t]` is tier t's full metric
  // row for the window. Call in temporal order. See
  // CoordinatedPredictor::train for `teacher_forced`.
  void train_instance(const std::vector<std::vector<double>>& tier_rows,
                      int label, int bottleneck_tier = -1,
                      bool teacher_forced = true);

  // Marks a boundary between independent training runs (clears history).
  void end_training_run();

  // Online decision for one window.
  CoordinatedPredictor::Decision observe(
      const std::vector<std::vector<double>>& tier_rows);

  // Degraded-mode decision: `tier_valid[t]` marks whether tier t's row
  // survived validation (core/validate.h). Synopses watching an invalid
  // tier abstain — their classifier never sees the row — and the
  // coordinated predictor decides under GPV masking with a stale-decision
  // fallback (CoordinatedPredictor::predict_masked). With an all-valid
  // mask this is bit-identical to observe().
  CoordinatedPredictor::Decision observe_masked(
      const std::vector<std::vector<double>>& tier_rows,
      const std::vector<std::uint8_t>& tier_valid);

  // Batched observe: decides every window of `block` into out[0..W).
  // Amortizes the per-synopsis dispatch — each synopsis projects and
  // scores the whole batch through its classifier's batch kernel before
  // the (stateful, sequential) coordinated predictor consumes the votes
  // window by window in block order. out[w] is bit-identical to calling
  // observe() per window, including history evolution. Allocation-free
  // after scratch buffers warm.
  void observe_many(const WindowBlock& block,
                    std::span<CoordinatedPredictor::Decision> out);

  // Batched observe_masked: valid[w * num_tiers + t] gates window w's
  // tier-t row (nullptr = all valid). Bit-identical to per-window
  // observe_masked, including degraded/stale fallbacks.
  void predict_masked_many(const WindowBlock& block,
                           const std::uint8_t* valid,
                           std::span<CoordinatedPredictor::Decision> out);

  // Fleet variant: same decisions, and additionally exposes the exact
  // per-window GPV each decision was made from — window-major, synopsis
  // s of window w at [w * num_synopses + s]. votes_valid_out mirrors the
  // abstention mask (an abstaining synopsis exports vote 0, valid 0).
  // This is what a leaf daemon streams up an aggregation tree: because a
  // synopsis reads only its own tier's row, the exported votes are
  // bit-identical to what a flat daemon seeing the same windows would
  // compute, so a parent re-deciding from merged leaf votes reproduces
  // the flat decision stream exactly.
  void predict_masked_many(const WindowBlock& block,
                           const std::uint8_t* valid,
                           std::span<CoordinatedPredictor::Decision> out,
                           int* votes_out, std::uint8_t* votes_valid_out);

  // Fleet-merge entry: one stateful decision from an externally
  // assembled GPV — a parent daemon merging disjoint leaf vote streams
  // calls this per window, in window order, exactly as the scalar path
  // would. Bit-identical to observe_masked when fed the votes/valid
  // arrays that observe_masked would have built itself.
  CoordinatedPredictor::Decision decide_votes_masked(
      std::span<const int> votes, std::span<const std::uint8_t> valid);

  // The raw per-synopsis votes for a window (GPV bits, for diagnostics).
  std::vector<int> synopsis_votes(
      const std::vector<std::vector<double>>& tier_rows) const;

  const std::vector<Synopsis>& synopses() const noexcept { return synopses_; }
  CoordinatedPredictor& predictor() noexcept { return predictor_; }
  const CoordinatedPredictor& predictor() const noexcept {
    return predictor_;
  }

 private:
  // Fills votes_scratch_ with the per-synopsis votes; the returned
  // reference stays valid until the next fill. Keeps the per-interval
  // observe/train paths allocation-free in steady state.
  const std::vector<int>& fill_votes(
      const std::vector<std::vector<double>>& tier_rows);

  // Shared kernel of observe_many / predict_masked_many. The vote
  // exports are optional (nullptr = not requested).
  void observe_block(const WindowBlock& block, const std::uint8_t* valid,
                     bool masked,
                     std::span<CoordinatedPredictor::Decision> out,
                     int* votes_out = nullptr,
                     std::uint8_t* votes_valid_out = nullptr);

  std::vector<Synopsis> synopses_;
  CoordinatedPredictor predictor_;
  std::vector<int> votes_scratch_;
  std::vector<std::uint8_t> valid_scratch_;
  // Batched-path scratch, synopsis-major: synopsis s's vote/valid flag
  // for window w lives at [s * num_windows + w].
  std::vector<int> votes_block_;
  std::vector<std::uint8_t> valid_block_;
};

}  // namespace hpcap::core
