// Online adaptation of the coordinated tables.
//
// The paper trains offline and predicts online; its conclusion lists
// accuracy on unknown traffic as the open gap. In a live deployment the
// application-level health of a window *does* become known — just late
// (requests admitted in the window finish, response times get logged).
// OnlineAdapter exploits that: it delays each window's synopsis votes
// until the caller reports the window's eventual ground truth, then
// reinforces the coordinated tables with it (mark_outcome). The predictor
// keeps making zero-lag decisions; the tables track drift a few windows
// behind. bench_ablation quantifies the effect on unknown-mix traffic.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/pipeline.h"

namespace hpcap::core {

class OnlineAdapter {
 public:
  // Default bound on unreported windows. In a healthy deployment truth
  // arrives a few windows late; thousands of pending windows means the
  // truth feed is dead, and an unbounded queue would grow forever.
  static constexpr std::size_t kDefaultMaxPending = 1024;

  explicit OnlineAdapter(CapacityMonitor& monitor,
                         std::size_t max_pending = kDefaultMaxPending);

  // Makes the (zero-lag) decision for a window and queues its votes for
  // later reinforcement. If the queue is full the *oldest* unreported
  // window is shed (with a warning): stale votes reinforce a regime that
  // has already drifted away, so the newest windows are the ones worth
  // keeping.
  CoordinatedPredictor::Decision observe(
      const std::vector<std::vector<double>>& tier_rows);

  // Reports the eventual ground truth of the *oldest unreported* window,
  // in observation order. No-op if nothing is pending. Note that after a
  // shed, the oldest unreported window is no longer the oldest observed
  // one — callers pairing truths to windows positionally should resync
  // via shed_windows().
  void report_truth(int label, int bottleneck_tier = -1);

  std::size_t pending() const noexcept { return pending_votes_.size(); }
  std::size_t max_pending() const noexcept { return max_pending_; }
  // Total windows shed because the queue was full.
  std::uint64_t shed_windows() const noexcept { return shed_; }

 private:
  CapacityMonitor& monitor_;
  std::size_t max_pending_;
  std::deque<std::vector<int>> pending_votes_;
  std::uint64_t shed_ = 0;
};

}  // namespace hpcap::core
