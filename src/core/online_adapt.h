// Online adaptation of the coordinated tables.
//
// The paper trains offline and predicts online; its conclusion lists
// accuracy on unknown traffic as the open gap. In a live deployment the
// application-level health of a window *does* become known — just late
// (requests admitted in the window finish, response times get logged).
// OnlineAdapter exploits that: it delays each window's synopsis votes
// until the caller reports the window's eventual ground truth, then
// reinforces the coordinated tables with it (mark_outcome). The predictor
// keeps making zero-lag decisions; the tables track drift a few windows
// behind. bench_ablation quantifies the effect on unknown-mix traffic.
#pragma once

#include <deque>
#include <vector>

#include "core/pipeline.h"

namespace hpcap::core {

class OnlineAdapter {
 public:
  explicit OnlineAdapter(CapacityMonitor& monitor) : monitor_(monitor) {}

  // Makes the (zero-lag) decision for a window and queues its votes for
  // later reinforcement.
  CoordinatedPredictor::Decision observe(
      const std::vector<std::vector<double>>& tier_rows);

  // Reports the eventual ground truth of the *oldest unreported* window,
  // in observation order. No-op if nothing is pending.
  void report_truth(int label, int bottleneck_tier = -1);

  std::size_t pending() const noexcept { return pending_votes_.size(); }

 private:
  CapacityMonitor& monitor_;
  std::deque<std::vector<int>> pending_votes_;
};

}  // namespace hpcap::core
