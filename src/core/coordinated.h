// The two-level coordinated predictor (§III.C–D), structured after the
// two-level adaptive branch predictors of Yeh & Patt:
//
//   level 1 — Global Pattern Table (GPT): one entry per possible Global
//   Pattern Vector (GPV), the m-bit vector of per-synopsis predictions in
//   the current sampling interval (2^m entries);
//
//   level 2 — per GPV, a Local History Table (LHT) indexed by the last h
//   coordinated prediction results (2^h entries), each holding a
//   saturating counter Hc trained by incrementing on overloaded training
//   instances and decrementing on underloaded ones;
//
//   decision — C = λ(Hc): overload if Hc > δ, underload if Hc < −δ, and
//   the φ tie scheme inside [−δ, δ] (optimistic → underload,
//   pessimistic → overload);
//
//   bottleneck — a Bottleneck Pattern Table (BPT), also GPV-indexed, holds
//   a per-tier vote vector BV updated from bottleneck-annotated overloaded
//   training instances; λb = argmax_i b_i names the bottleneck tier, and is
//   consulted only when the coordinated state prediction is "overloaded".
//
// History semantics: during *training* the history register is fed the
// true labels (as a branch predictor's history records actual outcomes);
// during *online prediction* it records the predictor's own coordinated
// decisions, since ground truth is unavailable. mark_outcome() lets a
// deployment feed delayed ground truth back in for online adaptation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <span>
#include <vector>

namespace hpcap::core {

enum class TieScheme {
  kOptimistic,   // φ(Hc) = underload inside [-δ, δ]
  kPessimistic,  // φ(Hc) = overload inside [-δ, δ]
};

// What feeds the h-bit history register.
enum class HistorySource {
  // The coordinated predictor's own past decisions — the literal reading
  // of §III.C. Subtle failure mode: online the register replays the
  // predictor's outputs, not the truth it was trained against, and a
  // confidently-wrong cell can lock the register (all-underload
  // trajectories never visit the overload-history cells). Kept for
  // fidelity and ablation.
  kSelfPredictions,
  // The majority vote of the current GPV — observable, identical in
  // training and deployment, immune to the lock. Weak when only one of m
  // synopses matches the live traffic (its lone bit never wins a
  // majority).
  kSynopsisMajority,
  // The disjunction of the GPV — "some synopsis fired this interval".
  // Observable like the majority, but it lets the history distinguish
  // *sustained* firing (a real overload episode) from an isolated false
  // positive even when only a single synopsis matches the traffic.
  // Default.
  kSynopsisAny,
};

// What to do when the indexed (GPV, history) cell was NEVER trained —
// traffic whose synopsis-vote pattern did not occur in any training
// workload (the paper's "unknown" mixes routinely produce such patterns).
enum class UnseenCellPolicy {
  kTieScheme,  // fall through to φ, as a literal reading of the paper
  // Extension (ablated in bench_ablation): majority vote of the synopsis
  // predictions decides; the bottleneck falls back to the tier whose
  // synopses contributed the most positive votes.
  kMajorityVote,
};

class CoordinatedPredictor {
 public:
  struct Options {
    int num_synopses = 4;  // m — GPT has 2^m entries
    int num_tiers = 2;     // K — width of each Bottleneck Vector
    int history_bits = 3;  // h — LHT has 2^h entries
    int delta = 5;         // δ — confidence band half-width
    TieScheme scheme = TieScheme::kOptimistic;
    // |Hc| saturation; keeps stale history from dominating. 0 = derive as
    // 2δ + 2.
    int hc_saturation = 0;
    UnseenCellPolicy unseen = UnseenCellPolicy::kMajorityVote;
    HistorySource history_source = HistorySource::kSynopsisAny;
    // Tier owning each GPV bit (for the majority-vote bottleneck
    // fallback); empty = fallback names tier 0.
    std::vector<int> synopsis_tiers;
  };

  explicit CoordinatedPredictor(Options opts);

  // --- training -------------------------------------------------------
  // One temporally ordered training instance: the per-synopsis predictions
  // for the interval, the true state, and the annotated bottleneck tier
  // (ignored unless label == 1; pass -1 if unknown).
  //
  // `teacher_forced` controls what feeds the history register: true labels
  // (bootstrap — gives the tables a consistent signal before the predictor
  // can predict) or the predictor's own decisions (closed-loop — matches
  // the online regime, where the LHT is indexed by "the last h prediction
  // results", §III.C). Train with one teacher-forced pass followed by
  // closed-loop passes; training only teacher-forced leaves the online
  // predictor reading history cells it never populated.
  void train(std::span<const int> synopsis_predictions, int label,
             int bottleneck_tier = -1, bool teacher_forced = true);
  // Braced-list convenience (std::span has no initializer_list
  // constructor until C++26): train({1, 0, 1}, ...).
  void train(std::initializer_list<int> synopsis_predictions, int label,
             int bottleneck_tier = -1, bool teacher_forced = true) {
    train(std::span<const int>(synopsis_predictions.begin(),
                               synopsis_predictions.size()),
          label, bottleneck_tier, teacher_forced);
  }

  // Resets the history register between training runs / deployment so one
  // workload's tail does not leak into the next (table contents persist).
  void reset_history();

  // --- online prediction ----------------------------------------------
  struct Decision {
    int state = 0;        // 0 = underload, 1 = overload
    bool confident = false;  // |Hc| > δ (φ was not needed)
    int hc = 0;
    int bottleneck_tier = -1;  // -1 unless state == 1
    // Degraded-mode bookkeeping (predict_masked): true when the decision
    // was not computed from a fully valid GPV, and how many consecutive
    // windows the predictor has been coasting on its last confident
    // decision (0 = this decision is grounded in current data).
    bool degraded = false;
    int staleness = 0;
  };

  // Makes the coordinated decision for the interval and advances the
  // online history register with it.
  Decision predict(std::span<const int> synopsis_predictions);
  Decision predict(std::initializer_list<int> synopsis_predictions) {
    return predict(std::span<const int>(synopsis_predictions.begin(),
                                        synopsis_predictions.size()));
  }

  // Degraded-mode decision: `valid[i]` marks whether synopsis i's input
  // row survived validation; invalid synopses *abstain* and their GPV bits
  // are unknown. Policy:
  //  * all bits valid — identical to predict() (bit-for-bit, including
  //    history evolution), staleness resets to 0;
  //  * some bits masked — the GPT is consulted under every completion of
  //    the unknown bits; if all completions agree on the state, that
  //    consensus is returned (degraded, staleness 0) and the history
  //    register advances on the valid bits only;
  //  * no valid bits, or the completions disagree — fall back to the last
  //    confident decision (degraded, staleness incremented); the history
  //    register holds, so garbage never trains or pollutes temporal state.
  // The fallback before any confident decision exists is the φ tie scheme
  // with no named bottleneck. Throws on width mismatch.
  Decision predict_masked(std::span<const int> synopsis_predictions,
                          std::span<const std::uint8_t> valid);
  Decision predict_masked(std::initializer_list<int> synopsis_predictions,
                          std::initializer_list<std::uint8_t> valid) {
    return predict_masked(
        std::span<const int>(synopsis_predictions.begin(),
                             synopsis_predictions.size()),
        std::span<const std::uint8_t>(valid.begin(), valid.size()));
  }

  // Consecutive predict_masked fallbacks since the last data-grounded
  // decision (mirrors Decision::staleness of the latest decision).
  int staleness() const noexcept { return staleness_; }

  // Optional online adaptation: once ground truth for the *previous*
  // prediction becomes known, reinforce the tables with it.
  void mark_outcome(std::span<const int> synopsis_predictions, int label,
                    int bottleneck_tier = -1);
  void mark_outcome(std::initializer_list<int> synopsis_predictions,
                    int label, int bottleneck_tier = -1) {
    mark_outcome(std::span<const int>(synopsis_predictions.begin(),
                                      synopsis_predictions.size()),
                 label, bottleneck_tier);
  }

  // --- introspection (tests, ablation benches) -------------------------
  const Options& options() const noexcept { return opts_; }
  int hc(std::size_t gpv, std::size_t history) const;
  // A copy of the gpv's Bottleneck Vector (the table is stored flat; a
  // stable reference into it would pin the layout into the API).
  std::vector<double> bottleneck_votes(std::size_t gpv) const;
  std::size_t gpt_size() const noexcept {
    return std::size_t{1} << opts_.num_synopses;
  }
  std::size_t lht_size() const noexcept {
    return std::size_t{1} << opts_.history_bits;
  }
  std::size_t current_history() const noexcept { return history_; }

  // Packs an m-bit GPV from per-synopsis predictions (bit i = synopsis i).
  static std::size_t pack_gpv(std::span<const int> predictions);
  static std::size_t pack_gpv(std::initializer_list<int> predictions) {
    return pack_gpv(
        std::span<const int>(predictions.begin(), predictions.size()));
  }

  // Persistence of options + learned tables (see core/model_io.h).
  void save(std::ostream& os) const;
  static CoordinatedPredictor load(std::istream& is);

 private:
  void update_tables(std::size_t gpv, int label, int bottleneck_tier);
  int decide(int hc_value) const;
  void push_history(int outcome);
  int majority(std::span<const int> votes) const;
  int history_signal(std::span<const int> votes) const;
  // The pure decision function: predict() minus history mutation.
  Decision evaluate(std::span<const int> synopsis_predictions) const;
  void note_decision(const Decision& d);
  Decision stale_fallback();

  // Flat-table indexing: the GPT/LHT/BPT are contiguous arrays rather than
  // vector-of-vectors, so the per-interval lookup is one multiply-add and
  // one cache line, and the observe path performs no allocation.
  std::size_t lht_index(std::size_t gpv, std::size_t history) const noexcept {
    return gpv * lht_size() + history;
  }
  std::size_t bpt_index(std::size_t gpv) const noexcept {
    return gpv * static_cast<std::size_t>(opts_.num_tiers);
  }

  Options opts_;
  int hc_cap_;
  // Hc for (gpv, history) lives at lht_[gpv * lht_size() + history].
  std::vector<int> lht_;
  // Which cells have ever been trained (an Hc of 0 can also mean
  // "balanced evidence", which should still use λ, not the fallback);
  // same indexing as lht_.
  std::vector<std::uint8_t> touched_;
  // Per-tier vote vector for gpv at bpt_[gpv * num_tiers .. +num_tiers)
  // (double: votes can be fractional under future weighting schemes;
  // integer updates in this paper).
  std::vector<double> bpt_;
  // Cumulative bottleneck votes across all GPVs — last-resort fallback
  // when neither the GPV's BV nor the synopsis votes can name a tier.
  std::vector<double> global_bv_;
  std::size_t history_ = 0;   // h-bit shift register
  std::size_t history_mask_;
  // Degraded-mode state (predict_masked): the most recent confident
  // decision to coast on, and how long we have been coasting.
  Decision last_confident_{};
  bool have_confident_ = false;
  int staleness_ = 0;
  // Scratch for the unseen-cell majority fallback (sized num_tiers at
  // construction); mutable so the const evaluate() stays allocation-free.
  mutable std::vector<int> tier_votes_scratch_;
  // predict_masked scratch (masked-bit list, completion workspace, valid
  // vote gather); member-owned so the degraded path is allocation-free in
  // steady state too. Never serialized.
  std::vector<std::size_t> masked_scratch_;
  std::vector<int> completed_scratch_;
  std::vector<int> valid_votes_scratch_;
};

}  // namespace hpcap::core
