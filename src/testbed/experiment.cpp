#include "testbed/experiment.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "counters/metric_catalog.h"

namespace hpcap::testbed {

CapacityEstimate estimate_capacity(const tpcw::Mix& mix,
                                   const TestbedConfig& cfg) {
  const auto demand = mix.mean_tier_demand();  // [app, db] CPU-s/request
  CapacityEstimate est;
  const double caps[kNumTiers] = {static_cast<double>(cfg.app.cores),
                                  static_cast<double>(cfg.db.cores)};
  est.saturation_rps = 1e300;
  for (int t = 0; t < kNumTiers; ++t) {
    const double d = demand[static_cast<std::size_t>(t)];
    if (d <= 0.0) continue;
    const double rps = caps[t] / d;
    if (rps < est.saturation_rps) {
      est.saturation_rps = rps;
      est.bottleneck_tier = t;
    }
  }
  est.base_response_time = demand[0] + demand[1] + 4.0 * cfg.network_hop;
  // Closed-loop: N ≈ X · (Z + R) at the saturation point.
  est.saturation_ebs = static_cast<int>(std::lround(
      est.saturation_rps *
      (cfg.rbe.think_time_mean + est.base_response_time)));
  return est;
}

namespace {
// Memo for the (sub-second, but repeated) calibration runs.
struct CapacityKey {
  std::string mix;
  double browse_fraction;
  double think;
  std::uint64_t seed;
  std::uint64_t hardware;  // fingerprint of capacity-relevant config
  bool operator<(const CapacityKey& o) const {
    return std::tie(mix, browse_fraction, think, seed, hardware) <
           std::tie(o.mix, o.browse_fraction, o.think, o.seed, o.hardware);
  }
};
std::map<CapacityKey, MeasuredCapacity> g_capacity_memo;

std::uint64_t hardware_fingerprint(const TestbedConfig& cfg) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  const auto mix_in = [&h](double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    h ^= bits + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  for (const auto* t : {&cfg.app, &cfg.db}) {
    mix_in(t->cores);
    mix_in(t->thread_pool);
    mix_in(t->freq_ghz);
    mix_in(t->thread_overhead_coeff);
    mix_in(t->thread_overhead_exp);
    mix_in(t->mem_stall_max);
    mix_in(t->mem_footprint_half_mb);
  }
  mix_in(cfg.network_hop);
  return h;
}
}  // namespace

MeasuredCapacity measure_capacity(const tpcw::Mix& mix,
                                  const TestbedConfig& cfg) {
  const CapacityKey key{mix.name(), mix.browse_fraction(),
                        cfg.rbe.think_time_mean, cfg.seed,
                        hardware_fingerprint(cfg)};
  if (const auto it = g_capacity_memo.find(key);
      it != g_capacity_memo.end())
    return it->second;

  MeasuredCapacity out;
  out.analytic = estimate_capacity(mix, cfg);

  // Coarse calibration ramp on a throwaway testbed: 12 levels up to 1.3x
  // the analytic estimate, 90 s per level (3 windows), knee on the
  // per-level mean throughput.
  TestbedConfig calib = cfg;
  calib.collect_hpc = false;  // raw capacity: no collectors, no cost
  calib.collect_os = false;
  calib.seed = cfg.seed ^ 0xCA11B;
  const int top =
      std::max(12, static_cast<int>(1.3 * out.analytic.saturation_ebs));
  const int step = std::max(1, top / 12);
  auto mix_ptr = std::make_shared<const tpcw::Mix>(mix);
  Testbed bed(calib);
  bed.run(tpcw::WorkloadSchedule::ramp(mix_ptr, step, top, step, 90.0));

  // Mean throughput per EB level.
  std::vector<double> levels, tput;
  for (const auto& r : bed.instances()) {
    if (!levels.empty() && levels.back() == r.ebs) {
      tput.back() = 0.5 * (tput.back() + r.health.throughput);
    } else {
      levels.push_back(r.ebs);
      tput.push_back(r.health.throughput);
    }
  }
  // Saturation = the largest level still delivering healthy latency (the
  // closed loop keeps response times near the base service time right up
  // to the capacity knee, then they take off). More robust than slope
  // detection on the noisy throughput curve; falls back to near-peak
  // throughput if the ramp never leaves the healthy regime.
  // Per-level mean response times alongside throughput.
  std::vector<double> level_rt;
  {
    double last_level = -1.0;
    int n_in_level = 0;
    for (const auto& r : bed.instances()) {
      if (r.ebs != last_level) {
        level_rt.push_back(r.health.mean_response_time);
        last_level = r.ebs;
        n_in_level = 1;
      } else {
        ++n_in_level;
        level_rt.back() += (r.health.mean_response_time - level_rt.back()) /
                           n_in_level;
      }
    }
  }
  const double rt_healthy = 0.35;  // seconds; several times the base RT
  std::size_t sat = tput.size() - 1;
  bool found = false;
  for (std::size_t i = 0; i < level_rt.size() && i < tput.size(); ++i) {
    if (level_rt[i] <= rt_healthy) {
      sat = i;
      found = true;
    }
  }
  if (!found) {
    const double peak = *std::max_element(tput.begin(), tput.end());
    for (std::size_t i = 0; i < tput.size(); ++i) {
      if (tput[i] >= 0.93 * peak) {
        sat = i;
        break;
      }
    }
  }
  out.saturation_ebs = static_cast<int>(levels[sat]);
  out.saturation_rps = tput[sat];
  g_capacity_memo.emplace(key, out);
  return out;
}

StressedSeries stressed_series(const std::vector<InstanceRecord>& records,
                               double min_utilization) {
  StressedSeries out;
  out.tier_hpc.resize(kNumTiers);
  for (const auto& r : records) {
    if (r.hpc.empty()) continue;
    const double peak =
        *std::max_element(r.tier_utilization.begin(),
                          r.tier_utilization.end());
    if (peak < min_utilization) continue;
    for (int t = 0; t < kNumTiers; ++t)
      out.tier_hpc[static_cast<std::size_t>(t)].push_back(
          r.hpc[static_cast<std::size_t>(t)]);
    out.throughput.push_back(r.health.throughput);
  }
  return out;
}

tpcw::WorkloadSchedule training_schedule(
    std::shared_ptr<const tpcw::Mix> mix, const TestbedConfig& cfg,
    const WorkloadScale& scale) {
  const MeasuredCapacity cap = measure_capacity(*mix, cfg);
  const auto ebs = [&cap](double factor) {
    return std::max(1, static_cast<int>(std::lround(
                           factor * cap.saturation_ebs)));
  };
  const int step =
      std::max(1, (ebs(scale.ramp_end) - ebs(scale.ramp_start)) /
                      std::max(1, scale.ramp_steps - 1));
  auto ramp = tpcw::WorkloadSchedule::ramp(mix, ebs(scale.ramp_start),
                                           ebs(scale.ramp_end), step,
                                           scale.step_duration);
  auto spike = tpcw::WorkloadSchedule::spike(
      mix, ebs(scale.spike_base), ebs(scale.spike_peak), scale.spike_period,
      scale.spike_duration, scale.spike_total);
  auto hover = hover_schedule(mix, cfg, 1.06, 0.12, 1500.0, 150.0, 3);
  return tpcw::WorkloadSchedule::concat("train-" + mix->name(),
                                        {ramp, spike, hover});
}

tpcw::WorkloadSchedule hover_schedule(std::shared_ptr<const tpcw::Mix> mix,
                                      const TestbedConfig& cfg,
                                      double center_factor, double jitter,
                                      double total, double step,
                                      std::uint64_t seed) {
  const MeasuredCapacity cap = measure_capacity(*mix, cfg);
  Rng rng(seed * 0x5eed + 1);
  std::vector<tpcw::WorkloadSchedule::Step> steps;
  double level = center_factor;
  double skew = 0.0;
  double bf_drift = 0.0;
  const double base_bf = mix->browse_fraction();
  for (double t = 0.0; t < total; t += step) {
    const int ebs = std::max(
        1, static_cast<int>(std::lround(level * cap.saturation_ebs)));
    // Composition jitter: both the heavy-query share and the browse/order
    // split of live traffic wander, so at a fixed EB level the *work*
    // offered varies — whether a window tips into overload depends on
    // what is running, not just how many clients are connected
    // ("excessive load vs excessive work", §V.B). It also means synopses
    // train on a band of compositions around their nominal mix, as they
    // would against real traffic.
    std::shared_ptr<const tpcw::Mix> step_mix;
    if (steps.empty()) {
      step_mix = mix;
    } else if (std::abs(skew) > 1e-3 || std::abs(bf_drift) > 1e-3) {
      const double bf = std::clamp(base_bf + bf_drift, 0.05, 0.97);
      step_mix = std::make_shared<const tpcw::Mix>(
          tpcw::Mix::with_class_fractions(mix->name(), bf, skew));
    }
    steps.push_back(tpcw::WorkloadSchedule::Step{t, ebs, step_mix});
    // Mean-reverting random walks.
    level += rng.normal(0.0, jitter * 0.6) + 0.5 * (center_factor - level);
    level = std::clamp(level, center_factor - 2.0 * jitter,
                       center_factor + 2.0 * jitter);
    skew += rng.normal(0.0, 0.25) - 0.4 * skew;
    skew = std::clamp(skew, -0.35, 0.35);
    bf_drift += rng.normal(0.0, 0.02) - 0.35 * bf_drift;
    bf_drift = std::clamp(bf_drift, -0.04, 0.04);
  }
  return tpcw::WorkloadSchedule("hover-" + mix->name(), std::move(steps),
                                total);
}

tpcw::WorkloadSchedule testing_schedule(
    std::shared_ptr<const tpcw::Mix> mix, const TestbedConfig& cfg,
    double segment) {
  const MeasuredCapacity cap = measure_capacity(*mix, cfg);
  // A little clearly-light and clearly-crushed traffic, but the bulk of
  // the test hovers at the capacity boundary where prediction is hard.
  std::vector<tpcw::WorkloadSchedule> parts;
  // Light and saturated-but-healthy steady levels...
  for (double f : {0.55, 0.95}) {
    const int ebs = std::max(
        1, static_cast<int>(std::lround(f * cap.saturation_ebs)));
    parts.push_back(tpcw::WorkloadSchedule::steady(mix, ebs, segment));
  }
  // ...a long boundary hover where prediction is genuinely hard...
  parts.push_back(hover_schedule(mix, cfg, 1.07, 0.11,
                                 std::max(segment * 5.0, 1280.0), 160.0,
                                 11));
  // ...and clearly overloaded levels.
  for (double f : {1.3, 1.45}) {
    const int ebs = std::max(
        1, static_cast<int>(std::lround(f * cap.saturation_ebs)));
    parts.push_back(tpcw::WorkloadSchedule::steady(mix, ebs, segment));
  }
  return tpcw::WorkloadSchedule::concat("test-" + mix->name(), parts);
}

tpcw::WorkloadSchedule interleaved_schedule(
    std::shared_ptr<const tpcw::Mix> mix_a,
    std::shared_ptr<const tpcw::Mix> mix_b, const TestbedConfig& cfg,
    double segment, double total) {
  const MeasuredCapacity ea = measure_capacity(*mix_a, cfg);
  const MeasuredCapacity eb = measure_capacity(*mix_b, cfg);
  // Alternate between clearly-healthy and clearly-stressed levels on each
  // mix so both states appear under both bottlenecks.
  std::vector<tpcw::WorkloadSchedule> parts;
  const double levels[] = {0.7, 1.3};
  bool use_a = true;
  for (double t = 0.0; t < total; t += segment) {
    const auto& est = use_a ? ea : eb;
    const auto& mix = use_a ? mix_a : mix_b;
    const double f =
        levels[(static_cast<int>(t / segment) / 2) % 2];
    const int ebs = std::max(
        1, static_cast<int>(std::lround(f * est.saturation_ebs)));
    parts.push_back(tpcw::WorkloadSchedule::steady(mix, ebs, segment));
    use_a = !use_a;
  }
  return tpcw::WorkloadSchedule::concat(
      "interleaved-" + mix_a->name() + "/" + mix_b->name(), parts);
}

std::shared_ptr<const tpcw::Mix> unknown_mix() {
  // "We change the transition probability in RBE to generate workload
  // different from either browsing or ordering mix" (§IV.A): a blend of
  // the two extremes' transition matrices — every row differs from both
  // training mixes, and the stationary browse fraction (~0.8) was never
  // seen in training.
  return std::make_shared<const tpcw::Mix>(
      tpcw::interpolate(tpcw::browsing_mix(), tpcw::ordering_mix(), 0.20,
                        "unknown"));
}

std::vector<int> health_labels(const std::vector<InstanceRecord>& records,
                               core::HealthPolicy policy) {
  core::HealthLabeler labeler(policy);
  std::vector<int> labels;
  labels.reserve(records.size());
  for (const auto& r : records) labels.push_back(labeler.label(r.health));
  return labels;
}

std::vector<int> bottleneck_annotations(
    const std::vector<InstanceRecord>& records,
    const std::vector<int>& labels) {
  std::vector<int> out(records.size(), -1);
  for (std::size_t i = 0; i < records.size() && i < labels.size(); ++i)
    if (labels[i] == 1) out[i] = records[i].bottleneck_tier;
  return out;
}

ml::Dataset make_dataset(const std::vector<InstanceRecord>& records,
                         int tier, const std::string& level,
                         const std::vector<int>& labels) {
  const bool hpc = level == "hpc";
  if (!hpc && level != "os")
    throw std::invalid_argument("make_dataset: level must be hpc|os");
  const auto& catalog =
      hpc ? counters::hpc_catalog() : counters::os_catalog();
  ml::Dataset d(catalog.names());
  for (std::size_t i = 0; i < records.size() && i < labels.size(); ++i) {
    const auto& grid = hpc ? records[i].hpc : records[i].os;
    if (grid.empty()) continue;  // collector was off for this run
    // Skip tiers whose window was discarded under fault injection: the
    // stored row is a zero placeholder, not a measurement.
    const auto& valid = hpc ? records[i].hpc_valid : records[i].os_valid;
    if (!valid.empty() && !valid.at(static_cast<std::size_t>(tier)))
      continue;
    d.add(grid.at(static_cast<std::size_t>(tier)), labels[i]);
  }
  return d;
}

std::vector<std::vector<double>> monitor_rows(const InstanceRecord& rec,
                                              const std::string& level) {
  return level == "hpc" ? rec.hpc : rec.os;
}

std::vector<std::uint8_t> monitor_row_validity(const InstanceRecord& rec,
                                               const std::string& level) {
  const auto& mask = level == "hpc" ? rec.hpc_valid : rec.os_valid;
  if (!mask.empty()) return mask;
  const auto& rows = level == "hpc" ? rec.hpc : rec.os;
  return std::vector<std::uint8_t>(rows.size(), 1);
}

core::CapacityMonitor build_monitor(
    const std::vector<NamedRun>& training_runs, const std::string& level,
    ml::LearnerKind learner, core::CoordinatedPredictor::Options options,
    int training_passes) {
  if (training_runs.empty())
    throw std::invalid_argument("build_monitor: no training runs");

  // One synopsis per (mix, tier), built concurrently: each (tier, mix)
  // selection+fit is independent, and build_synopsis_bank keeps GPV bit
  // order (= task order) and contents identical at every thread count.
  const core::SynopsisBuilder builder;
  std::vector<core::SynopsisTask> tasks;
  for (const auto& named : training_runs) {
    for (int tier = 0; tier < kNumTiers; ++tier) {
      tasks.push_back(
          {make_dataset(named.run->instances, tier, level, named.run->labels),
           {named.mix_name, tier == kAppTier ? "app" : "db", tier, level,
            learner}});
    }
  }
  std::vector<core::Synopsis> synopses =
      core::build_synopsis_bank(builder, std::move(tasks));

  options.synopsis_tiers.clear();
  for (const auto& syn : synopses)
    options.synopsis_tiers.push_back(syn.spec().tier_index);
  core::CapacityMonitor monitor(std::move(synopses), options);
  for (int pass = 0; pass < std::max(1, training_passes); ++pass) {
    // Pass 0 bootstraps with teacher-forced history; later passes replay
    // the stream closed-loop so the tables are trained on the history
    // trajectories the online predictor will actually generate.
    const bool teacher_forced = pass == 0;
    for (const auto& named : training_runs) {
      const auto bottlenecks =
          bottleneck_annotations(named.run->instances, named.run->labels);
      for (std::size_t i = 0; i < named.run->instances.size(); ++i) {
        monitor.train_instance(
            monitor_rows(named.run->instances[i], level),
            named.run->labels[i], bottlenecks[i], teacher_forced);
      }
      monitor.end_training_run();
    }
  }
  return monitor;
}

CollectedRun collect(const tpcw::WorkloadSchedule& schedule,
                     const TestbedConfig& cfg, core::HealthPolicy policy) {
  Testbed bed(cfg);
  bed.run(schedule);
  CollectedRun out;
  out.instances = bed.instances();
  out.labels = health_labels(out.instances, policy);
  out.samples = bed.samples();
  return out;
}

}  // namespace hpcap::testbed
