#include "testbed/trace.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "counters/metric_catalog.h"

namespace hpcap::testbed {

namespace {

// Fixed columns before the metric blocks.
const std::vector<std::string>& annotation_columns() {
  static const std::vector<std::string> cols = {
      "end_time", "label",      "mix",       "ebs",
      "offered",  "throughput", "mean_rt",   "bottleneck",
      "util0",    "util1",
  };
  return cols;
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace

std::vector<std::string> trace_header(int tiers) {
  std::vector<std::string> header = annotation_columns();
  for (int t = 0; t < tiers; ++t)
    for (const auto& name : counters::hpc_catalog().names())
      header.push_back("hpc" + std::to_string(t) + "_" + name);
  for (int t = 0; t < tiers; ++t)
    for (const auto& name : counters::os_catalog().names())
      header.push_back("os" + std::to_string(t) + "_" + name);
  return header;
}

void write_trace(std::ostream& os,
                 const std::vector<InstanceRecord>& records,
                 const std::vector<int>& labels) {
  const auto header = trace_header();
  for (std::size_t i = 0; i < header.size(); ++i)
    os << (i ? "," : "") << header[i];
  os << '\n';
  os.precision(17);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    os << r.end_time << ',' << (i < labels.size() ? labels[i] : -1) << ','
       << r.mix_name << ',' << r.ebs << ',' << r.offered_rate << ','
       << r.health.throughput << ',' << r.health.mean_response_time << ','
       << r.bottleneck_tier;
    for (int t = 0; t < kNumTiers; ++t)
      os << ','
         << (t < static_cast<int>(r.tier_utilization.size())
                 ? r.tier_utilization[static_cast<std::size_t>(t)]
                 : 0.0);
    for (int t = 0; t < kNumTiers; ++t) {
      const auto& row = r.hpc.empty()
                            ? std::vector<double>(
                                  counters::hpc_catalog().size(), 0.0)
                            : r.hpc[static_cast<std::size_t>(t)];
      for (double v : row) os << ',' << v;
    }
    for (int t = 0; t < kNumTiers; ++t) {
      const auto& row = r.os.empty()
                            ? std::vector<double>(
                                  counters::os_catalog().size(), 0.0)
                            : r.os[static_cast<std::size_t>(t)];
      for (double v : row) os << ',' << v;
    }
    os << '\n';
  }
}

std::vector<InstanceRecord> read_trace(std::istream& is,
                                       std::vector<int>* labels) {
  std::string line;
  if (!std::getline(is, line))
    throw std::runtime_error("read_trace: empty stream");
  const auto expected = trace_header();
  const auto got = split_csv_line(line);
  if (got != expected)
    throw std::runtime_error(
        "read_trace: header mismatch (different catalog version?)");

  const std::size_t hpc_n = counters::hpc_catalog().size();
  const std::size_t os_n = counters::os_catalog().size();
  std::vector<InstanceRecord> records;
  if (labels) labels->clear();
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto cells = split_csv_line(line);
    if (cells.size() != expected.size())
      throw std::runtime_error("read_trace: wrong column count");
    std::size_t c = 0;
    const auto next = [&cells, &c]() -> const std::string& {
      return cells[c++];
    };
    InstanceRecord r;
    r.end_time = std::stod(next());
    const int label = std::stoi(next());
    r.mix_name = next();
    r.ebs = std::stoi(next());
    r.offered_rate = std::stod(next());
    r.health.throughput = std::stod(next());
    r.health.mean_response_time = std::stod(next());
    r.health.offered_rate = r.offered_rate;
    r.bottleneck_tier = std::stoi(next());
    r.tier_utilization.resize(kNumTiers);
    for (int t = 0; t < kNumTiers; ++t)
      r.tier_utilization[static_cast<std::size_t>(t)] = std::stod(next());
    r.hpc.assign(kNumTiers, std::vector<double>(hpc_n));
    for (int t = 0; t < kNumTiers; ++t)
      for (std::size_t m = 0; m < hpc_n; ++m)
        r.hpc[static_cast<std::size_t>(t)][m] = std::stod(next());
    r.os.assign(kNumTiers, std::vector<double>(os_n));
    for (int t = 0; t < kNumTiers; ++t)
      for (std::size_t m = 0; m < os_n; ++m)
        r.os[static_cast<std::size_t>(t)][m] = std::stod(next());
    records.push_back(std::move(r));
    if (labels) labels->push_back(label);
  }
  return records;
}

}  // namespace hpcap::testbed
