#include "testbed/testbed.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "counters/overhead.h"

namespace hpcap::testbed {

TestbedConfig TestbedConfig::paper_defaults() {
  TestbedConfig cfg;
  cfg.app.name = "app";
  cfg.app.cores = 1;
  cfg.app.thread_pool = 120;       // Tomcat worker threads
  cfg.app.freq_ghz = 2.0;          // Pentium 4 2.0 GHz
  cfg.app.thread_overhead_coeff = 0.002;
  cfg.app.thread_overhead_exp = 1.1;
  cfg.app.mem_stall_max = 0.25;
  cfg.app.mem_footprint_half_mb = 500.0;

  cfg.db.name = "db";
  cfg.db.cores = 2;
  cfg.db.thread_pool = 40;         // MySQL connection pool
  cfg.db.freq_ghz = 2.8;           // Pentium D 2.8 GHz
  cfg.db.thread_overhead_coeff = 0.0015;
  cfg.db.thread_overhead_exp = 1.2;
  cfg.db.mem_stall_max = 0.35;
  cfg.db.mem_footprint_half_mb = 400.0;
  return cfg;
}

void Testbed::WindowAccum::reset(int tiers) {
  completed = 0;
  issued = 0;
  response_time_sum = 0.0;
  response_time_count = 0;
  util_sum.assign(static_cast<std::size_t>(tiers), 0.0);
  pressure_sum.assign(static_cast<std::size_t>(tiers), 0.0);
  ticks = 0;
}

struct Testbed::RequestCtx {
  sim::Request request;
  tpcw::Rbe::CompletionFn done;
  std::size_t phase = 0;
};

Testbed::Testbed(TestbedConfig cfg)
    : cfg_(cfg),
      factory_(cfg.seed * 0x9e37 + 11,
               tpcw::TierIds{kAppTier, kDbTier}),
      rng_(cfg.seed) {
  tiers_.push_back(std::make_unique<sim::Tier>(eq_, cfg_.app));
  tiers_.push_back(std::make_unique<sim::Tier>(eq_, cfg_.db));

  rbe_ = std::make_unique<tpcw::Rbe>(
      eq_, factory_, cfg_.rbe,
      [this](sim::Request req, tpcw::Rbe::CompletionFn done) {
        submit(std::move(req), std::move(done));
      });

  counters::HpcModel::Params hpc_params;
  counters::OsModel::Params os_params_app;
  os_params_app.ram_mb = 512.0;
  counters::OsModel::Params os_params_db;
  os_params_db.ram_mb = 1024.0;
  os_params_db.base_processes = 60.0;

  const std::vector<sim::Tier::Config> tier_cfgs = {cfg_.app, cfg_.db};
  const std::vector<counters::OsModel::Params> os_params = {os_params_app,
                                                            os_params_db};
  for (int t = 0; t < kNumTiers; ++t) {
    hpc_collectors_.push_back(std::make_unique<counters::HpcCollector>(
        tier_cfgs[static_cast<std::size_t>(t)], hpc_params,
        cfg_.seed * 131 + static_cast<std::uint64_t>(t)));
    os_collectors_.push_back(std::make_unique<counters::OsCollector>(
        tier_cfgs[static_cast<std::size_t>(t)],
        os_params[static_cast<std::size_t>(t)],
        cfg_.seed * 257 + static_cast<std::uint64_t>(t)));
    hpc_agg_.emplace_back(counters::hpc_catalog().size(),
                          cfg_.samples_per_instance,
                          cfg_.max_missing_fraction, cfg_.aggregator_trim);
    os_agg_.emplace_back(counters::os_catalog().size(),
                         cfg_.samples_per_instance,
                         cfg_.max_missing_fraction, cfg_.aggregator_trim);
    if (cfg_.faults.enabled()) {
      hpc_faults_.emplace_back(cfg_.faults,
                               0x1000u + static_cast<std::uint64_t>(t));
      os_faults_.emplace_back(cfg_.faults,
                              0x2000u + static_cast<std::uint64_t>(t));
    }
  }
  window_.reset(kNumTiers);
}

counters::FaultStats Testbed::fault_stats(const std::string& level,
                                          int tier) const {
  if (tier < 0 || tier >= kNumTiers)
    throw std::out_of_range("Testbed::fault_stats: tier");
  const auto& streams = level == "hpc" ? hpc_faults_ : os_faults_;
  if (streams.empty()) return counters::FaultStats{};
  return streams[static_cast<std::size_t>(tier)].stats();
}

std::uint64_t Testbed::discarded_windows(const std::string& level) const {
  const auto& aggs = level == "hpc" ? hpc_agg_ : os_agg_;
  std::uint64_t total = 0;
  for (const auto& a : aggs) total += a.windows_discarded();
  return total;
}

sim::Tier& Testbed::tier(int index) {
  if (index < 0 || index >= static_cast<int>(tiers_.size()))
    throw std::out_of_range("Testbed::tier");
  return *tiers_[static_cast<std::size_t>(index)];
}

void Testbed::set_admission_gate(AdmissionGate gate) {
  gate_ = std::move(gate);
}

void Testbed::set_instance_observer(InstanceObserver obs) {
  observer_ = std::move(obs);
}

void Testbed::submit(sim::Request req, tpcw::Rbe::CompletionFn done) {
  if (gate_ && !gate_(req)) {
    // Shed at the front door: the client gets an immediate "busy" page.
    ++rejected_;
    req.completion_time = eq_.now();
    done(req);
    return;
  }
  auto ctx = std::make_shared<RequestCtx>();
  ctx->request = std::move(req);
  ctx->done = std::move(done);
  // The request holds one front-end worker for its entire lifetime.
  tiers_[kAppTier]->acquire_thread([this, ctx] {
    ctx->request.first_service_time = eq_.now();
    run_phase(ctx);
  });
}

void Testbed::run_phase(const std::shared_ptr<RequestCtx>& ctx) {
  if (ctx->phase >= ctx->request.phases.size()) {
    finish(ctx);
    return;
  }
  const sim::Phase& ph = ctx->request.phases[ctx->phase++];
  sim::Tier::JobTag tag;
  tag.instr_per_demand_sec = ph.instr_density;
  tag.footprint_mb = ph.footprint_mb;
  tag.request_class = ctx->request.request_class;

  if (ph.tier == kDbTier) {
    const double demand = ph.demand;
    eq_.schedule_after(cfg_.network_hop, [this, ctx, tag, demand] {
      tiers_[kDbTier]->acquire_thread([this, ctx, tag, demand] {
        tiers_[kDbTier]->execute(demand, tag, [this, ctx] {
          tiers_[kDbTier]->release_thread();
          eq_.schedule_after(cfg_.network_hop,
                             [this, ctx] { run_phase(ctx); });
        });
      });
    });
  } else {
    tiers_[kAppTier]->execute(ph.demand, tag,
                              [this, ctx] { run_phase(ctx); });
  }
}

void Testbed::finish(const std::shared_ptr<RequestCtx>& ctx) {
  tiers_[kAppTier]->release_thread();
  ctx->request.completion_time = eq_.now();
  ++completed_;
  ctx->done(ctx->request);
}

void Testbed::start_sampling(double until) {
  const double next = eq_.now() + cfg_.sample_period;
  if (next > until + 1e-9) return;
  eq_.schedule_at(next, [this, until] {
    sampling_tick();
    start_sampling(until);
  });
}

void Testbed::sampling_tick() {
  // Drain tier statistics for the elapsed second.
  std::vector<sim::Tier::IntervalStats> stats;
  stats.reserve(tiers_.size());
  for (auto& t : tiers_) stats.push_back(t->sample_and_reset());

  // Client-side telemetry for the same second (closed-loop RBE plus the
  // open-loop stream when one is active).
  const tpcw::Rbe::Stats rbe_tick = rbe_->drain_interval_stats();
  const OlTick ol_tick = ol_tick_;
  ol_tick_ = OlTick{};
  window_.completed += rbe_tick.completed + ol_tick.completed;
  window_.issued += rbe_tick.issued + ol_tick.issued;
  window_.response_time_sum += rbe_tick.response_time.sum() + ol_tick.rt_sum;
  window_.response_time_count +=
      rbe_tick.response_time.count() + ol_tick.rt_count;
  ++window_.ticks;

  SampleRecord sample;
  sample.time = eq_.now();
  sample.ebs = rbe_->target_ebs();
  sample.throughput =
      static_cast<double>(rbe_tick.completed + ol_tick.completed) /
      cfg_.sample_period;

  std::optional<std::vector<std::vector<double>>> hpc_instance;
  std::optional<std::vector<std::vector<double>>> os_instance;
  std::vector<std::uint8_t> hpc_valid(tiers_.size(), 1);
  std::vector<std::uint8_t> os_valid(tiers_.size(), 1);
  std::vector<int> hpc_missing(tiers_.size(), 0);
  std::vector<int> os_missing(tiers_.size(), 0);
  bool hpc_closed = false;
  bool os_closed = false;

  // Routes one tier/level sample through its fault stream (if any) and its
  // gap-aware aggregator. The collector has already synthesized `v`; a
  // dropped or blacked-out read loses the sample *after* collection, so
  // the collectors' internal randomness — and therefore the underlying
  // metric streams — are identical across every fault plan.
  const auto ingest = [&](counters::FaultInjector* inj,
                          counters::InstanceAggregator& agg,
                          std::vector<double> v,
                          std::vector<std::vector<double>>& sample_rows) {
    bool lost = false;
    if (inj != nullptr) {
      const auto fate = inj->step();
      if (fate == counters::FaultInjector::SampleFate::kOk) {
        inj->perturb(v);
      } else {
        lost = true;
      }
    }
    if (lost) {
      sample_rows.emplace_back(v.size(),
                               std::numeric_limits<double>::quiet_NaN());
      return agg.mark_missing();
    }
    sample_rows.push_back(v);
    return agg.add_slot(v);
  };

  for (std::size_t t = 0; t < tiers_.size(); ++t) {
    const auto& s = stats[t];
    const auto& tc = tiers_[t]->config();
    const double util = s.utilization(tc.cores);
    window_.util_sum[t] += util;
    const double pool = std::max(1.0, static_cast<double>(tc.thread_pool));
    window_.pressure_sum[t] +=
        util + 0.3 * std::min(1.0, s.mean_queue() / pool);

    if (cfg_.collect_hpc) {
      if (cfg_.charge_collection_cost)
        counters::charge_collection_cost(
            *tiers_[t], counters::HpcCollector::cost_per_sample());
      const auto slot =
          ingest(hpc_faults_.empty() ? nullptr : &hpc_faults_[t],
                 hpc_agg_[t], hpc_collectors_[t]->collect(s), sample.hpc);
      if (slot.window_closed) {
        hpc_closed = true;
        hpc_valid[t] = slot.valid ? 1 : 0;
        hpc_missing[t] = slot.missing;
        if (!hpc_instance) hpc_instance.emplace(tiers_.size());
        (*hpc_instance)[t] =
            slot.valid ? std::move(*slot.instance)
                       : std::vector<double>(counters::hpc_catalog().size(),
                                             0.0);
      }
    }
    if (cfg_.collect_os) {
      if (cfg_.charge_collection_cost)
        counters::charge_collection_cost(
            *tiers_[t], counters::OsCollector::cost_per_sample());
      counters::OsGauges g;
      g.runnable_now = tiers_[t]->active_jobs();
      g.threads_now = tiers_[t]->admitted_threads();
      g.queue_now = tiers_[t]->queued();
      // Scheduler-visible blocking: database threads running large scans
      // sleep on buffer-pool I/O and latches (D/S state, invisible to the
      // run queue); application servlet threads are CPU-bound heap users
      // and stay runnable.
      const double fp = tiers_[t]->live_footprint_mb();
      g.blocked_fraction = (static_cast<int>(t) == kDbTier)
                               ? 0.97 * fp / (fp + 40.0)
                               : 0.15 * fp / (fp + 800.0);
      const auto slot =
          ingest(os_faults_.empty() ? nullptr : &os_faults_[t], os_agg_[t],
                 os_collectors_[t]->collect(s, g), sample.os);
      if (slot.window_closed) {
        os_closed = true;
        os_valid[t] = slot.valid ? 1 : 0;
        os_missing[t] = slot.missing;
        if (!os_instance) os_instance.emplace(tiers_.size());
        (*os_instance)[t] =
            slot.valid ? std::move(*slot.instance)
                       : std::vector<double>(counters::os_catalog().size(),
                                             0.0);
      }
    }
  }
  samples_.push_back(std::move(sample));

  // A full 30 s window closed on this tick (when any collector is active,
  // its aggregator defines the cadence — every slot consumes one tick, so
  // the aggregators stay in lockstep even when samples are lost; with no
  // collectors, fall back to tick counting so overhead baselines still
  // produce instances).
  const bool window_closed =
      hpc_closed || os_closed ||
      (!cfg_.collect_hpc && !cfg_.collect_os &&
       window_.ticks >= cfg_.samples_per_instance);
  if (!window_closed) return;

  InstanceRecord rec;
  rec.end_time = eq_.now();
  if (hpc_instance) rec.hpc = std::move(*hpc_instance);
  if (os_instance) rec.os = std::move(*os_instance);
  if (hpc_closed) {
    rec.hpc_valid = std::move(hpc_valid);
    rec.hpc_missing = std::move(hpc_missing);
  }
  if (os_closed) {
    rec.os_valid = std::move(os_valid);
    rec.os_missing = std::move(os_missing);
  }
  const double window_seconds =
      static_cast<double>(window_.ticks) * cfg_.sample_period;
  rec.health.throughput =
      static_cast<double>(window_.completed) / window_seconds;
  rec.health.mean_response_time =
      window_.response_time_count
          ? window_.response_time_sum /
                static_cast<double>(window_.response_time_count)
          : 0.0;
  rec.offered_rate = static_cast<double>(window_.issued) / window_seconds;
  rec.health.offered_rate = rec.offered_rate;
  rec.ebs = rbe_->target_ebs();
  rec.mix_name = open_loop_active_ ? current_mix_name_ : rbe_->mix().name();
  rec.tier_utilization.resize(tiers_.size());
  double best_pressure = -1.0;
  for (std::size_t t = 0; t < tiers_.size(); ++t) {
    rec.tier_utilization[t] =
        window_.util_sum[t] / static_cast<double>(window_.ticks);
    const double pressure =
        window_.pressure_sum[t] / static_cast<double>(window_.ticks);
    if (pressure > best_pressure) {
      best_pressure = pressure;
      rec.bottleneck_tier = static_cast<int>(t);
    }
  }
  window_.reset(kNumTiers);
  if (observer_) observer_(rec);
  instances_.push_back(std::move(rec));
}

void Testbed::run(const tpcw::WorkloadSchedule& schedule) {
  const double start = eq_.now();
  schedule.apply(eq_, *rbe_, start);
  run_end_ = start + schedule.duration();
  start_sampling(run_end_);
  eq_.run_until(run_end_);
  // Park the site between runs so back-to-back schedules start clean.
  rbe_->set_target_ebs(0);
}

void Testbed::run_open_loop(const tpcw::OpenLoopConfig& config,
                            const tpcw::Mix& mix, double duration) {
  if (!open_loop_) {
    open_loop_ = std::make_unique<tpcw::OpenLoopSource>(
        eq_, factory_, config,
        [this](sim::Request req, tpcw::Rbe::CompletionFn done) {
          ++ol_tick_.issued;
          submit(std::move(req),
                 [this, done = std::move(done)](const sim::Request& r) {
                   // A shed request never reached a tier
                   // (first_service_time stays -1); it is counted by
                   // rejected_, not as goodput.
                   if (r.first_service_time >= 0.0) {
                     ++ol_tick_.completed;
                     if (r.response_time() >= 0.0) {
                       ol_tick_.rt_sum += r.response_time();
                       ++ol_tick_.rt_count;
                     }
                   }
                   done(r);
                 });
        });
  }
  open_loop_->set_mix(std::make_shared<const tpcw::Mix>(mix));
  current_mix_name_ = mix.name();
  open_loop_active_ = true;
  const double start = eq_.now();
  run_end_ = start + duration;
  start_sampling(run_end_);
  open_loop_->run_until(run_end_);
  eq_.run_until(run_end_);
  open_loop_active_ = false;
}

}  // namespace hpcap::testbed
