// The simulated two-tier e-commerce testbed (§IV.B substitution).
//
// Reproduces the paper's measurement environment end to end:
//
//   client (RBE, EBs) ──► [APP tier: Tomcat-like worker pool, 1×2.0 GHz]
//                               │ JDBC call (request keeps its worker)
//                               ▼
//                         [DB tier: MySQL-like connection pool, 2×2.8 GHz]
//
// Every simulated second the testbed samples both tiers' interval
// statistics and synthesizes the HPC and OS metric vectors (optionally
// charging the collection cost to the sampled tier, as a real collector
// would); thirty 1 Hz samples are averaged into one *instance*, annotated
// with application-level health telemetry and the measured bottleneck tier
// for that window. Experiments never reach into the simulator's ground
// truth except through these recorded instances.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/labeling.h"
#include "counters/fault.h"
#include "counters/sampler.h"
#include "sim/event_queue.h"
#include "sim/tier.h"
#include "tpcw/open_loop.h"
#include "tpcw/rbe.h"
#include "tpcw/request_factory.h"
#include "tpcw/schedule.h"

namespace hpcap::testbed {

inline constexpr int kAppTier = 0;
inline constexpr int kDbTier = 1;
inline constexpr int kNumTiers = 2;

struct TestbedConfig {
  sim::Tier::Config app;
  sim::Tier::Config db;
  tpcw::Rbe::Config rbe;
  // One-way network latency between client/app and app/db (seconds).
  double network_hop = 0.0005;
  double sample_period = 1.0;       // metric sampling tick
  int samples_per_instance = 30;    // paper: 30 s windows
  bool collect_hpc = true;
  bool collect_os = true;
  // Charge collector CPU to the sampled tiers (the §V.D experiment).
  bool charge_collection_cost = false;
  // Counter-fault injection (counters/fault.h). Default: no faults — the
  // recorded metrics are then bit-identical to a fault-free build. Faults
  // perturb only what the collectors *report*; the simulation (and so the
  // ground-truth labels) is untouched.
  counters::FaultPlan faults;
  // Gap handling for the 30-sample windows: a window missing more than
  // this fraction of its samples is discarded, not averaged short.
  double max_missing_fraction = 0.5;
  // Per-metric samples trimmed from each extreme of a window before
  // averaging (0 = plain mean, bit-identical to the historical behavior).
  // Raise to 1-2 under fault injection to bound outlier damage.
  int aggregator_trim = 0;
  std::uint64_t seed = 42;

  // The paper's hardware: P4 2.0 GHz front end (512 MB), Pentium D
  // 2.8 GHz database (1 GB).
  static TestbedConfig paper_defaults();
};

// One 1 Hz sample row (kept for microscopic views like Fig. 3's inset).
struct SampleRecord {
  double time = 0.0;
  std::vector<std::vector<double>> hpc;  // [tier][metric]
  std::vector<std::vector<double>> os;   // [tier][metric]
  double throughput = 0.0;               // completions/s in this tick
  int ebs = 0;
};

// One 30 s instance — the unit every experiment trains and tests on.
struct InstanceRecord {
  double end_time = 0.0;
  std::vector<std::vector<double>> hpc;  // [tier][metric], window averages
  std::vector<std::vector<double>> os;
  // Per-tier window quality (set when the collector is active; empty ==
  // everything valid, for records predating fault awareness). A 0 entry
  // means the tier's window was discarded (too many missing samples) and
  // its row above is a zero placeholder that must not reach a synopsis.
  std::vector<std::uint8_t> hpc_valid;
  std::vector<std::uint8_t> os_valid;
  // Missing samples per tier in this window (diagnostics).
  std::vector<int> hpc_missing;
  std::vector<int> os_missing;
  core::WindowHealth health;             // app-level telemetry, same window
  double offered_rate = 0.0;             // requests issued / s
  int ebs = 0;
  std::string mix_name;
  // Measured bottleneck: the tier with the highest pressure (utilization
  // plus normalized queueing) during the window.
  int bottleneck_tier = -1;
  // Per-tier utilization during the window (diagnostics / tests).
  std::vector<double> tier_utilization;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig cfg = TestbedConfig::paper_defaults());

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  // Runs one workload schedule to completion, recording samples and
  // instances. May be called repeatedly; records accumulate.
  void run(const tpcw::WorkloadSchedule& schedule);

  // Drives the site with an *open* (sessionless) arrival stream for
  // `duration` seconds instead of the closed-loop RBE — the regime the
  // paper's front-end admission controller exists for: offered load that
  // does not slow down when the site does. The stream's config is fixed
  // on the first call (later calls extend it with a new mix); instances
  // and samples land in the same records as closed-loop runs (ebs = 0).
  // Combine with open_loop()->set_admitted_rate_cap(...) for cap-based
  // shedding of offered rates far beyond the site's knee.
  void run_open_loop(const tpcw::OpenLoopConfig& config,
                     const tpcw::Mix& mix, double duration);
  // The open-loop source, once run_open_loop has been called (else null).
  tpcw::OpenLoopSource* open_loop() noexcept { return open_loop_.get(); }

  // Optional front-door admission gate: return false to shed an arriving
  // request (it completes immediately with rejected() marked).
  using AdmissionGate = std::function<bool(const sim::Request&)>;
  void set_admission_gate(AdmissionGate gate);

  // Optional per-instance observer (online pipelines hook in here).
  using InstanceObserver = std::function<void(const InstanceRecord&)>;
  void set_instance_observer(InstanceObserver obs);

  const std::vector<SampleRecord>& samples() const noexcept {
    return samples_;
  }
  const std::vector<InstanceRecord>& instances() const noexcept {
    return instances_;
  }
  std::uint64_t rejected_requests() const noexcept { return rejected_; }
  std::uint64_t completed_requests() const noexcept { return completed_; }

  // Injected-fault accounting per (level, tier); zeros when the plan is
  // disabled. `level` is "hpc" or "os".
  counters::FaultStats fault_stats(const std::string& level,
                                   int tier) const;
  // Windows discarded for excessive gaps, per level (both tiers).
  std::uint64_t discarded_windows(const std::string& level) const;

  const TestbedConfig& config() const noexcept { return cfg_; }
  sim::EventQueue& events() noexcept { return eq_; }
  sim::Tier& tier(int index);
  tpcw::Rbe& rbe() noexcept { return *rbe_; }

 private:
  struct RequestCtx;

  void submit(sim::Request req, tpcw::Rbe::CompletionFn done);
  void run_phase(const std::shared_ptr<RequestCtx>& ctx);
  void finish(const std::shared_ptr<RequestCtx>& ctx);
  void sampling_tick();
  void start_sampling(double until);

  TestbedConfig cfg_;
  sim::EventQueue eq_;
  std::vector<std::unique_ptr<sim::Tier>> tiers_;
  tpcw::RequestFactory factory_;
  std::unique_ptr<tpcw::Rbe> rbe_;
  std::unique_ptr<tpcw::OpenLoopSource> open_loop_;
  bool open_loop_active_ = false;
  // Per-tick open-loop telemetry, drained by sampling_tick alongside the
  // RBE's (shed requests complete instantly and are not counted as
  // goodput here — rejected_ tracks them).
  struct OlTick {
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    double rt_sum = 0.0;
    std::uint64_t rt_count = 0;
  };
  OlTick ol_tick_;
  AdmissionGate gate_;
  InstanceObserver observer_;
  Rng rng_;

  std::vector<std::unique_ptr<counters::HpcCollector>> hpc_collectors_;
  std::vector<std::unique_ptr<counters::OsCollector>> os_collectors_;
  std::vector<counters::InstanceAggregator> hpc_agg_;
  std::vector<counters::InstanceAggregator> os_agg_;
  // One fault stream per (level, tier); empty when cfg_.faults is
  // disabled (the fault-free path draws no fault randomness at all).
  std::vector<counters::FaultInjector> hpc_faults_;
  std::vector<counters::FaultInjector> os_faults_;

  // Window accumulation for health/bottleneck annotation.
  struct WindowAccum {
    std::uint64_t completed = 0;
    std::uint64_t issued = 0;
    double response_time_sum = 0.0;
    std::uint64_t response_time_count = 0;
    std::vector<double> util_sum;      // per tier
    std::vector<double> pressure_sum;  // per tier
    int ticks = 0;
    void reset(int tiers);
  };
  WindowAccum window_;

  std::vector<SampleRecord> samples_;
  std::vector<InstanceRecord> instances_;
  std::string current_mix_name_;
  double run_end_ = 0.0;
  std::uint64_t rejected_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace hpcap::testbed
