// Experiment plumbing shared by benches, examples and integration tests:
// capacity estimation (to scale workloads to this testbed), the paper's
// training/testing workload recipes, label extraction, and conversion of
// recorded instances into per-(tier, level) ML datasets.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "ml/dataset.h"
#include "testbed/testbed.h"
#include "tpcw/mix.h"
#include "tpcw/schedule.h"

namespace hpcap::testbed {

// Analytic capacity estimate for a mix on a testbed configuration (mean
// value analysis on the uncontended demands). Used to scale ramp/steady
// workloads relative to the saturation point, and exported as a
// capacity-planning utility in its own right.
struct CapacityEstimate {
  double saturation_rps = 0.0;   // bottleneck-capped request rate
  int bottleneck_tier = -1;      // which tier caps it
  double base_response_time = 0.0;  // uncontended per-request latency
  int saturation_ebs = 0;        // EB count that offers saturation_rps
};
CapacityEstimate estimate_capacity(const tpcw::Mix& mix,
                                   const TestbedConfig& cfg);

// Empirical capacity from a coarse offline stress ramp (the paper's
// "thresholds determined empirically in offline stress-testing", §II.A).
// The analytic estimate ignores contention-driven efficiency loss and can
// overshoot badly for database-bound mixes; this runs a short calibration
// ramp on a throwaway testbed and locates the throughput knee. Results are
// memoized per (mix, think time, seed).
struct MeasuredCapacity {
  int saturation_ebs = 0;
  double saturation_rps = 0.0;
  CapacityEstimate analytic;
};
MeasuredCapacity measure_capacity(const tpcw::Mix& mix,
                                  const TestbedConfig& cfg);

// --- The paper's workload recipes (§IV.A) ------------------------------

struct WorkloadScale {
  // EB levels relative to the mix's saturation EB count.
  double ramp_start = 0.20;
  double ramp_end = 1.60;
  int ramp_steps = 14;
  double step_duration = 120.0;   // 4 instances per level
  double spike_base = 0.70;
  double spike_peak = 1.70;
  double spike_period = 240.0;
  double spike_duration = 60.0;
  double spike_total = 1200.0;
};

// Training workload: ramp-up to overload, spikes, then a boundary hover.
tpcw::WorkloadSchedule training_schedule(std::shared_ptr<const tpcw::Mix> mix,
                                         const TestbedConfig& cfg,
                                         const WorkloadScale& scale = {});

// Boundary hover: the EB population random-walks around
// `center_factor` × saturation, re-stepping every `step` seconds. At these
// levels utilization is pinned near 100% whether or not the site is
// actually degrading, so windows flip between healthy-saturated and
// overloaded on the strength of stochastic load/composition fluctuation —
// the regime that separates work-character (HPC) metrics from
// load-monotone (OS) ones.
tpcw::WorkloadSchedule hover_schedule(std::shared_ptr<const tpcw::Mix> mix,
                                      const TestbedConfig& cfg,
                                      double center_factor, double jitter,
                                      double total, double step = 90.0,
                                      std::uint64_t seed = 5);

// Testing workload: steady segments at levels straddling saturation
// (0.5× .. 1.45×, densely sampled around 1.0×), `segment` seconds each.
tpcw::WorkloadSchedule testing_schedule(std::shared_ptr<const tpcw::Mix> mix,
                                        const TestbedConfig& cfg,
                                        double segment = 240.0);

// Interleaved testing workload: alternates the two mixes (each at a level
// that stresses *its* bottleneck tier), forcing bottleneck shifts.
tpcw::WorkloadSchedule interleaved_schedule(
    std::shared_ptr<const tpcw::Mix> mix_a,
    std::shared_ptr<const tpcw::Mix> mix_b, const TestbedConfig& cfg,
    double segment = 300.0, double total = 3600.0);

// The paper's "unknown" workload: a mix unseen in training (between the
// browsing and ordering extremes, intra-class weights skewed).
std::shared_ptr<const tpcw::Mix> unknown_mix();

// --- Label and dataset extraction --------------------------------------

// Application-level ground truth per instance (stateful across the run).
std::vector<int> health_labels(const std::vector<InstanceRecord>& records,
                               core::HealthPolicy policy = {});

// Per-instance bottleneck annotation (records' measured pressure argmax),
// masked to -1 for instances labeled underloaded.
std::vector<int> bottleneck_annotations(
    const std::vector<InstanceRecord>& records,
    const std::vector<int>& labels);

// Builds the (tier, level) dataset the paper trains a synopsis on.
// `level` is "hpc" or "os".
ml::Dataset make_dataset(const std::vector<InstanceRecord>& records,
                         int tier, const std::string& level,
                         const std::vector<int>& labels);

// Runs `schedule` on a fresh testbed and returns instances + labels.
struct CollectedRun {
  std::vector<InstanceRecord> instances;
  std::vector<int> labels;
  std::vector<SampleRecord> samples;
};
CollectedRun collect(const tpcw::WorkloadSchedule& schedule,
                     const TestbedConfig& cfg,
                     core::HealthPolicy policy = {});

// Builds the paper's full two-level measurement stack for one metric
// level: one synopsis per (training mix, tier) — GPV bit order is
// [mix0/APP, mix0/DB, mix1/APP, mix1/DB] — then trains the coordinated
// predictor over every training run's instances in temporal order
// (bottleneck-annotated, history reset between runs).
struct NamedRun {
  std::string mix_name;
  const CollectedRun* run;
};
// `training_passes`: how many times the instance stream is replayed into
// the coordinated tables. One pass leaves most Hc counters inside the
// [-δ, δ] indecision band (each GPV×history cell sees only a handful of
// instances); replaying a consistent stream drives the populated cells
// past δ, exactly as a longer stress test would.
core::CapacityMonitor build_monitor(
    const std::vector<NamedRun>& training_runs, const std::string& level,
    ml::LearnerKind learner, core::CoordinatedPredictor::Options options,
    int training_passes = 4);

// Rows for one instance in the layout CapacityMonitor::observe expects.
std::vector<std::vector<double>> monitor_rows(const InstanceRecord& rec,
                                              const std::string& level);

// Per-tier validity mask for the same rows (all 1s when the record
// predates fault awareness, i.e. its mask is empty). Pair with
// CapacityMonitor::observe_masked to keep discarded windows' placeholder
// rows away from the synopses.
std::vector<std::uint8_t> monitor_row_validity(const InstanceRecord& rec,
                                               const std::string& level);

// Per-tier HPC metric series + throughput reference restricted to the
// *stressed* region of a run (any tier utilization >= min_utilization) —
// the regime over which the paper's Corr (Eq. 2) meaningfully ranks PI
// candidates; light-load intervals would wash the correlation out.
struct StressedSeries {
  std::vector<std::vector<std::vector<double>>> tier_hpc;  // [tier][t][m]
  std::vector<double> throughput;
};
StressedSeries stressed_series(const std::vector<InstanceRecord>& records,
                               double min_utilization = 0.55);

}  // namespace hpcap::testbed
