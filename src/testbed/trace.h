// Instance-trace archiving.
//
// A collected run (30 s instances with both metric levels, health
// telemetry and annotations) serializes to a flat CSV so experiments can
// be archived, diffed, re-labeled and re-analyzed without re-simulating —
// the workflow the paper's offline training implies. The column layout is
// self-describing: fixed annotation columns followed by
// `hpc<tier>_<metric>` and `os<tier>_<metric>` blocks per the catalogs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "testbed/testbed.h"

namespace hpcap::testbed {

// The CSV header for the given tier count (annotations + metric blocks).
std::vector<std::string> trace_header(int tiers = kNumTiers);

// Writes records (and optional labels; -1 = unlabeled) as CSV.
void write_trace(std::ostream& os,
                 const std::vector<InstanceRecord>& records,
                 const std::vector<int>& labels = {});

// Reads a trace back. Labels come out in `labels` (-1 where unlabeled).
// Throws std::runtime_error on malformed input or catalog mismatch.
std::vector<InstanceRecord> read_trace(std::istream& is,
                                       std::vector<int>* labels = nullptr);

}  // namespace hpcap::testbed
