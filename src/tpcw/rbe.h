// Remote Browser Emulator.
//
// Mirrors the RBE shipped with the Rice TPC-W implementation, as modified
// by the paper (§IV.A): a population of Emulated Browsers (EBs), each a
// closed-loop session that issues one interaction, waits for the response,
// thinks for an exponentially distributed time, then follows the active
// mix's Markov chain to its next interaction. The EB population size and
// the active mix are runtime-adjustable, which is how ramp-up, spike,
// interleaved and unknown workloads are produced.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "sim/event_queue.h"
#include "sim/request.h"
#include "tpcw/mix.h"
#include "tpcw/request_factory.h"
#include "util/stats.h"

namespace hpcap::tpcw {

class Rbe {
 public:
  struct Config {
    double think_time_mean = 3.5;  // seconds (scaled-down TPC-W think time)
    std::uint64_t seed = 1;
  };

  // The system under test: takes ownership of the request and must invoke
  // the completion callback exactly once when the response is ready.
  using CompletionFn = std::function<void(const sim::Request&)>;
  using SubmitFn =
      std::function<void(sim::Request request, CompletionFn on_complete)>;

  Rbe(sim::EventQueue& eq, RequestFactory& factory, Config cfg,
      SubmitFn submit);

  // Sets the Markov mix EBs consult for their next interaction. Takes
  // effect immediately for every subsequent navigation decision.
  void set_mix(std::shared_ptr<const Mix> mix);
  const Mix& mix() const { return *mix_; }

  // Grows or shrinks the EB population. New EBs start with a fresh think
  // time; surplus EBs retire at their next navigation decision.
  void set_target_ebs(int target);
  int target_ebs() const noexcept { return target_; }
  int active_ebs() const noexcept { return static_cast<int>(ebs_.size()); }
  // EBs currently waiting on an outstanding request (vs. thinking).
  int waiting_ebs() const noexcept { return waiting_; }

  struct Stats {
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    RunningStats response_time;
    std::uint64_t completed_by_class[2] = {0, 0};
  };
  // Cumulative statistics since construction.
  const Stats& stats() const noexcept { return stats_; }
  // Statistics since the previous drain (per-interval view).
  Stats drain_interval_stats();

 private:
  struct Browser {
    Rng rng;
    Interaction current{};
    bool first = true;
  };

  void spawn_browser();
  void think_then_issue(std::uint64_t id);
  void issue(std::uint64_t id);
  void on_response(std::uint64_t id, const sim::Request& req);

  sim::EventQueue& eq_;
  RequestFactory& factory_;
  Config cfg_;
  SubmitFn submit_;
  std::shared_ptr<const Mix> mix_;
  Rng rng_;

  std::unordered_map<std::uint64_t, Browser> ebs_;
  std::uint64_t next_eb_id_ = 0;
  int target_ = 0;
  int waiting_ = 0;

  Stats stats_;
  Stats interval_;
};

}  // namespace hpcap::tpcw
