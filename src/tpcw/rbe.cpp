#include "tpcw/rbe.h"

#include <stdexcept>
#include <utility>

namespace hpcap::tpcw {

Rbe::Rbe(sim::EventQueue& eq, RequestFactory& factory, Config cfg,
         SubmitFn submit)
    : eq_(eq),
      factory_(factory),
      cfg_(cfg),
      submit_(std::move(submit)),
      mix_(std::make_shared<const Mix>(shopping_mix())),
      rng_(cfg.seed) {
  if (!submit_) throw std::invalid_argument("Rbe: submit function required");
}

void Rbe::set_mix(std::shared_ptr<const Mix> mix) {
  if (!mix) throw std::invalid_argument("Rbe: null mix");
  mix_ = std::move(mix);
}

void Rbe::set_target_ebs(int target) {
  target_ = std::max(0, target);
  while (active_ebs() < target_) spawn_browser();
  // Surplus EBs retire themselves at their next navigation decision.
}

void Rbe::spawn_browser() {
  const std::uint64_t id = next_eb_id_++;
  Browser b{rng_.split(id), Interaction::kHome, true};
  ebs_.emplace(id, std::move(b));
  think_then_issue(id);
}

void Rbe::think_then_issue(std::uint64_t id) {
  auto it = ebs_.find(id);
  if (it == ebs_.end()) return;
  const double think = it->second.rng.exponential(cfg_.think_time_mean);
  eq_.schedule_after(think, [this, id] { issue(id); });
}

void Rbe::issue(std::uint64_t id) {
  auto it = ebs_.find(id);
  if (it == ebs_.end()) return;
  // Population shrink: retire before issuing the next interaction.
  if (active_ebs() > target_) {
    ebs_.erase(it);
    return;
  }
  Browser& b = it->second;
  if (b.first) {
    b.current = mix_->initial(b.rng);
    b.first = false;
  } else {
    b.current = mix_->next(b.current, b.rng);
  }
  sim::Request req = factory_.make(b.current);
  req.arrival_time = eq_.now();
  ++stats_.issued;
  ++interval_.issued;
  ++waiting_;
  submit_(std::move(req),
          [this, id](const sim::Request& done) { on_response(id, done); });
}

void Rbe::on_response(std::uint64_t id, const sim::Request& req) {
  --waiting_;
  const double rt = req.response_time();
  const auto cls = static_cast<int>(req.request_class);
  ++stats_.completed;
  ++stats_.completed_by_class[cls];
  if (rt >= 0.0) stats_.response_time.add(rt);
  ++interval_.completed;
  ++interval_.completed_by_class[cls];
  if (rt >= 0.0) interval_.response_time.add(rt);
  think_then_issue(id);
}

Rbe::Stats Rbe::drain_interval_stats() {
  Stats out = interval_;
  interval_ = Stats{};
  return out;
}

}  // namespace hpcap::tpcw
