// Materializes sim::Request objects from the TPC-W interaction catalog.
//
// Each generated request follows the three-phase pattern
//   [APP pre-processing] -> [DB query] -> [APP rendering]
// (the DB phase is omitted for pure-servlet pages such as Search Request).
// Phase demands are sampled log-normally around the catalog means with the
// catalog's coefficient of variation, so individual requests of one type
// vary realistically — the paper's observation that "requests of an
// e-commerce transaction have very different processing times" (§I).
#pragma once

#include <cstdint>

#include "sim/request.h"
#include "tpcw/interactions.h"
#include "util/rng.h"

namespace hpcap::tpcw {

// Tier indices the generated phases refer to.
struct TierIds {
  int app = 0;
  int db = 1;
};

class RequestFactory {
 public:
  explicit RequestFactory(std::uint64_t seed, TierIds tiers = TierIds());

  sim::Request make(Interaction type);

  std::uint64_t requests_created() const noexcept { return next_id_; }

 private:
  double sample_demand(double mean, double cv);

  Rng rng_;
  TierIds tiers_;
  std::uint64_t next_id_ = 0;
};

}  // namespace hpcap::tpcw
