#include "tpcw/interactions.h"

#include <stdexcept>

namespace hpcap::tpcw {

namespace {
using sim::RequestClass;

// Demands are CPU-seconds at nominal (uncontended) efficiency: one
// demand-second consumes one core-second when the tier efficiency is 1.
//
// Calibration notes (see DESIGN.md §2): browse-class pages run heavy
// database work (Best Sellers / Search Results are aggregation and LIKE
// scans over the item/order tables, with tens of MB of buffer-pool
// traffic), while order-class pages are servlet- and session-heavy with
// light indexed queries. Instruction densities give servlet code an
// uncontended IPC near 0.8 on the 2.0 GHz front end and scan-bound query
// code an IPC near 0.4-0.65 on the 2.8 GHz database machine.
constexpr std::array<InteractionProfile, kNumInteractions> kCatalog = {{
    {Interaction::kHome, "Home", RequestClass::kBrowse,
     0.003, 0.004, 0.005, 0.30, 2.0, 4.0, 1.6e9, 1.8e9},
    {Interaction::kNewProducts, "NewProducts", RequestClass::kBrowse,
     0.003, 0.006, 0.045, 0.40, 3.0, 30.0, 1.6e9, 1.2e9},
    {Interaction::kBestSellers, "BestSellers", RequestClass::kBrowse,
     0.003, 0.006, 0.090, 0.50, 3.0, 60.0, 1.6e9, 1.1e9},
    {Interaction::kProductDetail, "ProductDetail", RequestClass::kBrowse,
     0.002, 0.004, 0.008, 0.30, 2.0, 5.0, 1.6e9, 1.8e9},
    {Interaction::kSearchRequest, "SearchRequest", RequestClass::kBrowse,
     0.002, 0.003, 0.000, 0.20, 2.0, 0.0, 1.6e9, 1.8e9},
    {Interaction::kSearchResults, "SearchResults", RequestClass::kBrowse,
     0.003, 0.007, 0.060, 0.50, 3.0, 45.0, 1.6e9, 1.15e9},
    {Interaction::kShoppingCart, "ShoppingCart", RequestClass::kOrder,
     0.008, 0.006, 0.006, 0.30, 5.0, 4.0, 1.7e9, 1.8e9},
    {Interaction::kCustomerRegistration, "CustomerRegistration",
     RequestClass::kOrder,
     0.010, 0.005, 0.004, 0.30, 6.0, 3.0, 1.7e9, 1.8e9},
    {Interaction::kBuyRequest, "BuyRequest", RequestClass::kOrder,
     0.012, 0.008, 0.008, 0.30, 6.0, 5.0, 1.7e9, 1.8e9},
    {Interaction::kBuyConfirm, "BuyConfirm", RequestClass::kOrder,
     0.014, 0.008, 0.012, 0.40, 7.0, 6.0, 1.7e9, 1.7e9},
    {Interaction::kOrderInquiry, "OrderInquiry", RequestClass::kOrder,
     0.006, 0.004, 0.003, 0.20, 4.0, 3.0, 1.7e9, 1.8e9},
    {Interaction::kOrderDisplay, "OrderDisplay", RequestClass::kOrder,
     0.008, 0.006, 0.010, 0.30, 5.0, 6.0, 1.7e9, 1.7e9},
    {Interaction::kAdminRequest, "AdminRequest", RequestClass::kOrder,
     0.006, 0.004, 0.004, 0.30, 4.0, 3.0, 1.7e9, 1.8e9},
    {Interaction::kAdminConfirm, "AdminConfirm", RequestClass::kOrder,
     0.010, 0.006, 0.015, 0.40, 5.0, 10.0, 1.7e9, 1.6e9},
}};
}  // namespace

const std::array<InteractionProfile, kNumInteractions>& interaction_catalog() {
  return kCatalog;
}

const InteractionProfile& profile_of(Interaction type) {
  const auto idx = static_cast<std::size_t>(type);
  if (idx >= kCatalog.size())
    throw std::out_of_range("profile_of: bad interaction");
  return kCatalog[idx];
}

std::string_view interaction_name(Interaction type) {
  return profile_of(type).name;
}

sim::RequestClass class_of(Interaction type) {
  return profile_of(type).request_class;
}

bool is_browse(Interaction type) {
  return class_of(type) == sim::RequestClass::kBrowse;
}

}  // namespace hpcap::tpcw
