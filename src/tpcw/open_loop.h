// Open-loop traffic source.
//
// The RBE's closed loop (population + think time) self-throttles: offered
// load falls as response times grow. Admission-control studies also need
// the opposite regime — an *open* arrival process whose rate does not
// care how slow the site gets (the paper's front-end controller exists
// precisely to "regulate the input traffic rate"). This source generates:
//
//   * Poisson arrivals at a fixed rate, or
//   * a two-state MMPP (Markov-modulated Poisson process): exponentially
//     distributed quiet periods at `rate_rps` interrupted by bursts at
//     `burst_rate_rps` — the classic bursty-web-traffic model.
//
// Arrivals are sessionless: each request's interaction type is drawn from
// the active mix's stationary distribution (an open stream has no per-user
// navigation state to walk).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/event_queue.h"
#include "tpcw/mix.h"
#include "tpcw/rbe.h"
#include "tpcw/request_factory.h"
#include "util/stats.h"

namespace hpcap::tpcw {

struct OpenLoopConfig {
  double rate_rps = 50.0;        // baseline Poisson rate
  double burst_rate_rps = 0.0;   // 0 = plain Poisson (no bursts)
  double mean_quiet_s = 120.0;   // expected time between bursts
  double mean_burst_s = 20.0;    // expected burst duration
  std::uint64_t seed = 13;
};

class OpenLoopSource {
 public:
  OpenLoopSource(sim::EventQueue& eq, RequestFactory& factory,
                 OpenLoopConfig cfg, Rbe::SubmitFn submit);

  void set_mix(std::shared_ptr<const Mix> mix);

  // Starts (or extends) arrival generation up to absolute time `until`.
  void run_until(sim::SimTime until);

  // Admission thinning (the ctrl/admission seam). Caps the *admitted*
  // arrival rate at `cap_rps`: each arrival of a Poisson stream admitted
  // independently with probability p leaves an admitted stream that is
  // itself Poisson at p*lambda, so the source generates admitted
  // arrivals only and accounts the shed remainder arithmetically —
  // offered rates in the millions cost nothing beyond the admitted
  // events. Non-finite or negative caps are treated as 0 (shed all).
  void set_admitted_rate_cap(double cap_rps);
  double admitted_rate_cap() const noexcept { return cap_rps_; }
  // Nominal (unthinned) offered rate right now.
  double offered_rate() const noexcept { return current_rate(); }
  // Running count of arrivals shed by the cap, in expectation:
  // the integral of max(0, rate - cap) dt so far.
  double shed_offered() const noexcept { return shed_offered_; }

  bool bursting() const noexcept { return bursting_; }
  std::uint64_t issued() const noexcept { return issued_; }
  std::uint64_t completed() const noexcept { return completed_; }
  const RunningStats& response_times() const noexcept { return rt_; }

 private:
  void schedule_next_arrival();
  void schedule_mode_switch();
  double current_rate() const noexcept;
  double admitted_rate() const noexcept;
  void account_shed();  // accrue the shed integral up to eq_.now()

  sim::EventQueue& eq_;
  RequestFactory& factory_;
  OpenLoopConfig cfg_;
  Rbe::SubmitFn submit_;
  std::shared_ptr<const Mix> mix_;
  std::vector<double> stationary_weights_;
  Rng rng_;

  sim::SimTime until_ = 0.0;
  bool bursting_ = false;
  std::uint64_t arrival_generation_ = 0;  // invalidates stale arrivals
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  RunningStats rt_;
  double cap_rps_ = 0.0;  // 0/unset sentinel: uncapped until first set
  bool capped_ = false;
  double shed_offered_ = 0.0;
  sim::SimTime shed_mark_ = 0.0;  // last shed-accrual time
};

}  // namespace hpcap::tpcw
