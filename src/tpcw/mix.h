// TPC-W traffic mixes.
//
// A Mix is a Markov model over the 14 interactions: Emulated Browsers walk
// its transition matrix, one interaction per think cycle. TPC-W defines
// three standard mixes by their browse/order request percentages —
// Browsing (95/5), Shopping (80/20) and Ordering (50/50) — and the paper
// additionally tests *interleaved* traffic (alternating mixes) and
// *unknown* mixes obtained by altering the RBE transition probabilities.
//
// Mixes here are constructed from (a) a natural-navigation graph (Search
// Request leads to Search Results, Buy Request to Buy Confirm, ...) and
// (b) a target class split, calibrated so that the chain's stationary
// distribution matches the requested browse/order fractions.
#pragma once

#include <array>
#include <string>

#include "tpcw/interactions.h"
#include "util/rng.h"

namespace hpcap::tpcw {

class Mix {
 public:
  using Row = std::array<double, kNumInteractions>;
  using TransitionMatrix = std::array<Row, kNumInteractions>;

  Mix(std::string name, Row initial_distribution, TransitionMatrix transition);

  // Builds a mix whose stationary browse fraction is (approximately,
  // within 1e-3) `browse_fraction`. `heavy_skew` tilts the intra-browse
  // weights toward the heavy database interactions (Best Sellers / Search
  // Results / New Products): 0 = standard weights, +1 doubles their share,
  // -1 halves it. Used to synthesize the paper's "unknown" workloads.
  static Mix with_class_fractions(std::string name, double browse_fraction,
                                  double heavy_skew = 0.0);

  const std::string& name() const noexcept { return name_; }

  // First interaction of a session.
  Interaction initial(Rng& rng) const;
  // Next interaction after `current`.
  Interaction next(Interaction current, Rng& rng) const;

  // Stationary distribution of the transition matrix (power iteration).
  Row stationary() const;
  // Browse-class mass of the stationary distribution.
  double browse_fraction() const;
  // Expected per-request CPU demand placed on (app, db) tiers under the
  // stationary distribution — used by capacity-planning examples.
  std::array<double, 2> mean_tier_demand() const;

  const TransitionMatrix& transition() const noexcept { return transition_; }
  const Row& initial_distribution() const noexcept { return initial_; }

 private:
  std::string name_;
  Row initial_{};
  TransitionMatrix transition_{};
};

// The three standard TPC-W mixes.
Mix browsing_mix();   // 95% browse / 5% order — database-bound
Mix shopping_mix();   // 80% browse / 20% order — the WIPS reference mix
Mix ordering_mix();   // 50% browse / 50% order — front-end-bound

// Linear interpolation of two mixes' matrices (renormalized); t in [0,1].
Mix interpolate(const Mix& a, const Mix& b, double t, std::string name = "");

}  // namespace hpcap::tpcw
