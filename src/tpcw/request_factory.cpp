#include "tpcw/request_factory.h"

namespace hpcap::tpcw {

RequestFactory::RequestFactory(std::uint64_t seed, TierIds tiers)
    : rng_(seed), tiers_(tiers) {}

double RequestFactory::sample_demand(double mean, double cv) {
  if (mean <= 0.0) return 0.0;
  if (cv <= 0.0) return mean;
  return rng_.lognormal_mean_cv(mean, cv);
}

sim::Request RequestFactory::make(Interaction type) {
  const InteractionProfile& prof = profile_of(type);
  sim::Request req;
  req.id = next_id_++;
  req.type = static_cast<int>(type);
  req.request_class = prof.request_class;

  const double pre = sample_demand(prof.app_pre_demand, prof.demand_cv);
  const double db = sample_demand(prof.db_demand, prof.demand_cv);
  const double post = sample_demand(prof.app_post_demand, prof.demand_cv);

  req.phases.push_back(sim::Phase{tiers_.app, pre, prof.app_footprint_mb,
                                  prof.app_instr_density});
  if (db > 0.0) {
    // Query footprint scales with the sampled work: a search that scans
    // twice as many rows touches roughly twice the buffer pool.
    const double fp_scale = prof.db_demand > 0.0 ? db / prof.db_demand : 1.0;
    req.phases.push_back(sim::Phase{tiers_.db, db,
                                    prof.db_footprint_mb * fp_scale,
                                    prof.db_instr_density});
  }
  req.phases.push_back(sim::Phase{tiers_.app, post, prof.app_footprint_mb,
                                  prof.app_instr_density});
  return req;
}

}  // namespace hpcap::tpcw
