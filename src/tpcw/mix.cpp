#include "tpcw/mix.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace hpcap::tpcw {

namespace {

constexpr int kN = kNumInteractions;
using Row = Mix::Row;
using TransitionMatrix = Mix::TransitionMatrix;

constexpr auto I = [](Interaction t) { return static_cast<int>(t); };

// Natural navigation edges of the TPC-W bookstore, independent of mix.
// Each row is normalized below; zero rows are not allowed.
TransitionMatrix navigation_graph() {
  TransitionMatrix nav{};
  auto edge = [&nav](Interaction from, Interaction to, double w) {
    nav[static_cast<std::size_t>(I(from))][static_cast<std::size_t>(I(to))] =
        w;
  };
  using E = Interaction;
  edge(E::kHome, E::kProductDetail, 0.30);
  edge(E::kHome, E::kSearchRequest, 0.30);
  edge(E::kHome, E::kNewProducts, 0.15);
  edge(E::kHome, E::kBestSellers, 0.15);
  edge(E::kHome, E::kShoppingCart, 0.10);

  edge(E::kNewProducts, E::kProductDetail, 0.60);
  edge(E::kNewProducts, E::kHome, 0.20);
  edge(E::kNewProducts, E::kSearchRequest, 0.20);

  edge(E::kBestSellers, E::kProductDetail, 0.60);
  edge(E::kBestSellers, E::kHome, 0.20);
  edge(E::kBestSellers, E::kSearchRequest, 0.20);

  edge(E::kProductDetail, E::kShoppingCart, 0.30);
  edge(E::kProductDetail, E::kSearchRequest, 0.25);
  edge(E::kProductDetail, E::kHome, 0.20);
  edge(E::kProductDetail, E::kProductDetail, 0.15);
  edge(E::kProductDetail, E::kBestSellers, 0.10);

  edge(E::kSearchRequest, E::kSearchResults, 1.00);

  edge(E::kSearchResults, E::kProductDetail, 0.50);
  edge(E::kSearchResults, E::kSearchRequest, 0.30);
  edge(E::kSearchResults, E::kHome, 0.20);

  edge(E::kShoppingCart, E::kCustomerRegistration, 0.40);
  edge(E::kShoppingCart, E::kShoppingCart, 0.20);
  edge(E::kShoppingCart, E::kProductDetail, 0.20);
  edge(E::kShoppingCart, E::kHome, 0.20);

  edge(E::kCustomerRegistration, E::kBuyRequest, 0.80);
  edge(E::kCustomerRegistration, E::kHome, 0.20);

  edge(E::kBuyRequest, E::kBuyConfirm, 0.70);
  edge(E::kBuyRequest, E::kShoppingCart, 0.20);
  edge(E::kBuyRequest, E::kHome, 0.10);

  edge(E::kBuyConfirm, E::kHome, 0.60);
  edge(E::kBuyConfirm, E::kOrderInquiry, 0.40);

  edge(E::kOrderInquiry, E::kOrderDisplay, 0.80);
  edge(E::kOrderInquiry, E::kHome, 0.20);

  edge(E::kOrderDisplay, E::kHome, 0.70);
  edge(E::kOrderDisplay, E::kOrderInquiry, 0.30);

  edge(E::kAdminRequest, E::kAdminConfirm, 0.80);
  edge(E::kAdminRequest, E::kHome, 0.20);

  edge(E::kAdminConfirm, E::kHome, 0.80);
  edge(E::kAdminConfirm, E::kAdminRequest, 0.20);
  return nav;
}

void normalize(Row& row) {
  double s = 0.0;
  for (double v : row) s += v;
  if (s <= 0.0) throw std::logic_error("Mix: zero probability row");
  for (double& v : row) v /= s;
}

// Intra-class base weights (fractions of the class mass given to each
// interaction). `heavy_skew` multiplies the heavy-query browse pages'
// weights by 2^skew.
Row target_distribution(double browse_fraction, double heavy_skew) {
  Row d{};
  const double heavy_mult = std::exp2(heavy_skew);
  using E = Interaction;
  auto set = [&d](Interaction t, double w) {
    d[static_cast<std::size_t>(I(t))] = w;
  };
  // Browse class.
  set(E::kHome, 0.20);
  set(E::kNewProducts, 0.12 * heavy_mult);
  set(E::kBestSellers, 0.11 * heavy_mult);
  set(E::kProductDetail, 0.30);
  set(E::kSearchRequest, 0.12);
  set(E::kSearchResults, 0.15 * heavy_mult);
  double browse_sum = 0.0;
  for (int i = 0; i < kN; ++i)
    if (is_browse(static_cast<Interaction>(i)))
      browse_sum += d[static_cast<std::size_t>(i)];
  for (int i = 0; i < kN; ++i)
    if (is_browse(static_cast<Interaction>(i)))
      d[static_cast<std::size_t>(i)] *= browse_fraction / browse_sum;
  // Order class.
  set(E::kShoppingCart, 0.25);
  set(E::kCustomerRegistration, 0.10);
  set(E::kBuyRequest, 0.15);
  set(E::kBuyConfirm, 0.20);
  set(E::kOrderInquiry, 0.10);
  set(E::kOrderDisplay, 0.10);
  set(E::kAdminRequest, 0.05);
  set(E::kAdminConfirm, 0.05);
  for (int i = 0; i < kN; ++i)
    if (!is_browse(static_cast<Interaction>(i)))
      d[static_cast<std::size_t>(i)] *= (1.0 - browse_fraction);
  return d;
}

Row stationary_of(const TransitionMatrix& p) {
  Row pi{};
  pi.fill(1.0 / kN);
  for (int iter = 0; iter < 300; ++iter) {
    Row next{};
    for (int i = 0; i < kN; ++i)
      for (int j = 0; j < kN; ++j)
        next[static_cast<std::size_t>(j)] +=
            pi[static_cast<std::size_t>(i)] *
            p[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    double delta = 0.0;
    for (int j = 0; j < kN; ++j)
      delta += std::abs(next[static_cast<std::size_t>(j)] -
                        pi[static_cast<std::size_t>(j)]);
    pi = next;
    if (delta < 1e-12) break;
  }
  return pi;
}

double browse_mass(const Row& pi) {
  double b = 0.0;
  for (int i = 0; i < kN; ++i)
    if (is_browse(static_cast<Interaction>(i)))
      b += pi[static_cast<std::size_t>(i)];
  return b;
}

}  // namespace

Mix::Mix(std::string name, Row initial_distribution,
         TransitionMatrix transition)
    : name_(std::move(name)),
      initial_(initial_distribution),
      transition_(transition) {
  normalize(initial_);
  for (auto& row : transition_) normalize(row);
}

Mix Mix::with_class_fractions(std::string name, double browse_fraction,
                              double heavy_skew) {
  if (browse_fraction <= 0.0 || browse_fraction >= 1.0)
    throw std::invalid_argument("Mix: browse_fraction must be in (0,1)");
  const TransitionMatrix nav = navigation_graph();
  Row target = target_distribution(browse_fraction, heavy_skew);
  normalize(target);

  // Rows blend natural navigation with the target distribution; the target
  // component is then recalibrated so the *stationary* class split matches
  // the requested one (the blend alone skews toward the navigation graph's
  // own equilibrium).
  constexpr double kNavWeight = 0.35;
  Row adjusted = target;
  TransitionMatrix p{};
  for (int iter = 0; iter < 40; ++iter) {
    for (int i = 0; i < kN; ++i) {
      for (int j = 0; j < kN; ++j) {
        p[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            kNavWeight * nav[static_cast<std::size_t>(i)]
                            [static_cast<std::size_t>(j)] +
            (1.0 - kNavWeight) * adjusted[static_cast<std::size_t>(j)];
      }
      normalize(p[static_cast<std::size_t>(i)]);
    }
    const Row pi = stationary_of(p);
    const double actual = browse_mass(pi);
    if (std::abs(actual - browse_fraction) < 5e-4) break;
    // Rescale class masses of the adjusted target toward the goal.
    const double browse_scale = browse_fraction / std::max(actual, 1e-9);
    const double order_scale =
        (1.0 - browse_fraction) / std::max(1.0 - actual, 1e-9);
    for (int j = 0; j < kN; ++j) {
      auto& w = adjusted[static_cast<std::size_t>(j)];
      w *= is_browse(static_cast<Interaction>(j)) ? browse_scale
                                                  : order_scale;
    }
    normalize(adjusted);
  }
  return Mix(std::move(name), target, p);
}

Interaction Mix::initial(Rng& rng) const {
  const std::vector<double> w(initial_.begin(), initial_.end());
  return static_cast<Interaction>(rng.categorical(w));
}

Interaction Mix::next(Interaction current, Rng& rng) const {
  const auto& row = transition_[static_cast<std::size_t>(I(current))];
  const std::vector<double> w(row.begin(), row.end());
  return static_cast<Interaction>(rng.categorical(w));
}

Mix::Row Mix::stationary() const { return stationary_of(transition_); }

double Mix::browse_fraction() const { return browse_mass(stationary()); }

std::array<double, 2> Mix::mean_tier_demand() const {
  const Row pi = stationary();
  double app = 0.0, db = 0.0;
  for (int i = 0; i < kN; ++i) {
    const auto& prof = profile_of(static_cast<Interaction>(i));
    const double w = pi[static_cast<std::size_t>(i)];
    app += w * (prof.app_pre_demand + prof.app_post_demand);
    db += w * prof.db_demand;
  }
  return {app, db};
}

Mix browsing_mix() { return Mix::with_class_fractions("browsing", 0.95); }
Mix shopping_mix() { return Mix::with_class_fractions("shopping", 0.80); }
Mix ordering_mix() { return Mix::with_class_fractions("ordering", 0.50); }

Mix interpolate(const Mix& a, const Mix& b, double t, std::string name) {
  t = std::clamp(t, 0.0, 1.0);
  if (name.empty()) name = a.name() + "+" + b.name();
  Mix::Row init{};
  Mix::TransitionMatrix p{};
  for (int i = 0; i < kN; ++i) {
    init[static_cast<std::size_t>(i)] =
        (1.0 - t) * a.initial_distribution()[static_cast<std::size_t>(i)] +
        t * b.initial_distribution()[static_cast<std::size_t>(i)];
    for (int j = 0; j < kN; ++j)
      p[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          (1.0 - t) * a.transition()[static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(j)] +
          t * b.transition()[static_cast<std::size_t>(i)]
                  [static_cast<std::size_t>(j)];
  }
  return Mix(std::move(name), init, p);
}

}  // namespace hpcap::tpcw
