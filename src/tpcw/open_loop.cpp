#include "tpcw/open_loop.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace hpcap::tpcw {

OpenLoopSource::OpenLoopSource(sim::EventQueue& eq, RequestFactory& factory,
                               OpenLoopConfig cfg, Rbe::SubmitFn submit)
    : eq_(eq),
      factory_(factory),
      cfg_(cfg),
      submit_(std::move(submit)),
      rng_(cfg.seed) {
  if (!submit_)
    throw std::invalid_argument("OpenLoopSource: submit function required");
  if (cfg_.rate_rps <= 0.0)
    throw std::invalid_argument("OpenLoopSource: rate must be > 0");
  set_mix(std::make_shared<const Mix>(shopping_mix()));
}

void OpenLoopSource::set_mix(std::shared_ptr<const Mix> mix) {
  if (!mix) throw std::invalid_argument("OpenLoopSource: null mix");
  mix_ = std::move(mix);
  const auto pi = mix_->stationary();
  stationary_weights_.assign(pi.begin(), pi.end());
}

double OpenLoopSource::current_rate() const noexcept {
  return bursting_ && cfg_.burst_rate_rps > 0.0 ? cfg_.burst_rate_rps
                                                : cfg_.rate_rps;
}

double OpenLoopSource::admitted_rate() const noexcept {
  const double rate = current_rate();
  return capped_ ? std::min(rate, cap_rps_) : rate;
}

void OpenLoopSource::account_shed() {
  const sim::SimTime now = eq_.now();
  const double dt = now - shed_mark_;
  if (dt > 0.0 && now <= until_ + 1e-9)
    shed_offered_ += std::max(0.0, current_rate() - admitted_rate()) * dt;
  shed_mark_ = now;
}

void OpenLoopSource::set_admitted_rate_cap(double cap_rps) {
  account_shed();  // close out the old cap's accrual first
  capped_ = true;
  cap_rps_ = std::isfinite(cap_rps) ? std::max(0.0, cap_rps) : 0.0;
  // Restart the stream at the thinned rate (exponential memorylessness
  // makes discarding the partial gap harmless).
  ++arrival_generation_;
  if (until_ > eq_.now()) schedule_next_arrival();
}

void OpenLoopSource::run_until(sim::SimTime until) {
  const bool was_running = until_ > eq_.now();
  until_ = until;
  if (!was_running) {
    shed_mark_ = eq_.now();
    schedule_next_arrival();
    if (cfg_.burst_rate_rps > 0.0) schedule_mode_switch();
  }
}

void OpenLoopSource::schedule_next_arrival() {
  const std::uint64_t gen = arrival_generation_;
  const double rate = admitted_rate();
  if (rate <= 0.0) return;  // fully shed; a cap raise restarts the stream
  const double gap = rng_.exponential(1.0 / rate);
  if (eq_.now() + gap > until_) return;
  eq_.schedule_after(gap, [this, gen] {
    if (gen != arrival_generation_) return;  // rate changed mid-gap
    account_shed();
    const auto type =
        static_cast<Interaction>(rng_.categorical(stationary_weights_));
    sim::Request req = factory_.make(type);
    req.arrival_time = eq_.now();
    ++issued_;
    submit_(std::move(req), [this](const sim::Request& done) {
      ++completed_;
      if (done.response_time() >= 0.0) rt_.add(done.response_time());
    });
    schedule_next_arrival();
  });
}

void OpenLoopSource::schedule_mode_switch() {
  const double dwell = rng_.exponential(bursting_ ? cfg_.mean_burst_s
                                                  : cfg_.mean_quiet_s);
  if (eq_.now() + dwell > until_) return;
  eq_.schedule_after(dwell, [this] {
    account_shed();  // the nominal rate changes at the mode boundary
    bursting_ = !bursting_;
    // Restart the arrival stream at the new rate (memorylessness of the
    // exponential makes the discarded partial gap harmless).
    ++arrival_generation_;
    schedule_next_arrival();
    schedule_mode_switch();
  });
}

}  // namespace hpcap::tpcw
