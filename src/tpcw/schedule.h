// Workload schedules.
//
// A WorkloadSchedule is a timed sequence of (EB population, mix) settings
// applied to an Rbe. The paper's workloads are all expressible this way:
//   * ramp-up — EBs increased step-wise until the site is overloaded
//     (training data);
//   * spike — occasional extreme bursts on top of a moderate base
//     (training data);
//   * steady — fixed EBs and mix (testing, Fig. 3 microscopic views);
//   * interleaved — alternating browsing/ordering segments, forcing the
//     bottleneck to shift between tiers (testing, Fig. 4);
//   * unknown — a mix unseen in training, synthesized by altering
//     transition probabilities (testing, Fig. 4).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "tpcw/mix.h"
#include "tpcw/rbe.h"

namespace hpcap::tpcw {

class WorkloadSchedule {
 public:
  struct Step {
    double at = 0.0;  // simulated time the setting takes effect
    int ebs = 0;
    std::shared_ptr<const Mix> mix;  // null = keep the current mix
  };

  WorkloadSchedule(std::string name, std::vector<Step> steps,
                   double duration);

  // --- Builders ------------------------------------------------------
  // EBs fixed at `ebs` for `duration`.
  static WorkloadSchedule steady(std::shared_ptr<const Mix> mix, int ebs,
                                 double duration);
  // EBs stepped from `start_ebs` to `end_ebs` in increments of `step_ebs`,
  // holding each level for `step_duration`.
  static WorkloadSchedule ramp(std::shared_ptr<const Mix> mix, int start_ebs,
                               int end_ebs, int step_ebs,
                               double step_duration);
  // Base load with periodic bursts: `base_ebs` normally, `spike_ebs` for
  // `spike_duration` once per `period`, for `total_duration` overall.
  static WorkloadSchedule spike(std::shared_ptr<const Mix> mix, int base_ebs,
                                int spike_ebs, double period,
                                double spike_duration, double total_duration);
  // Alternates (mix_a, ebs_a) and (mix_b, ebs_b) every `segment_duration`.
  static WorkloadSchedule interleaved(std::shared_ptr<const Mix> mix_a,
                                      int ebs_a,
                                      std::shared_ptr<const Mix> mix_b,
                                      int ebs_b, double segment_duration,
                                      double total_duration);
  // Concatenates schedules back to back.
  static WorkloadSchedule concat(std::string name,
                                 const std::vector<WorkloadSchedule>& parts);

  const std::string& name() const noexcept { return name_; }
  double duration() const noexcept { return duration_; }
  const std::vector<Step>& steps() const noexcept { return steps_; }

  // Registers every step as an event on `eq` (offset by `start_time`).
  void apply(sim::EventQueue& eq, Rbe& rbe, double start_time = 0.0) const;

  // The EB level in force at time `t` (for ground-truth bookkeeping).
  int ebs_at(double t) const noexcept;
  // The mix in force at time `t` (never null once the schedule started).
  std::shared_ptr<const Mix> mix_at(double t) const noexcept;

 private:
  std::string name_;
  std::vector<Step> steps_;  // sorted by `at`
  double duration_ = 0.0;
};

}  // namespace hpcap::tpcw
