#include "tpcw/schedule.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace hpcap::tpcw {

WorkloadSchedule::WorkloadSchedule(std::string name, std::vector<Step> steps,
                                   double duration)
    : name_(std::move(name)), steps_(std::move(steps)), duration_(duration) {
  std::stable_sort(steps_.begin(), steps_.end(),
                   [](const Step& a, const Step& b) { return a.at < b.at; });
  if (steps_.empty())
    throw std::invalid_argument("WorkloadSchedule: no steps");
  if (!steps_.front().mix)
    throw std::invalid_argument("WorkloadSchedule: first step needs a mix");
}

WorkloadSchedule WorkloadSchedule::steady(std::shared_ptr<const Mix> mix,
                                          int ebs, double duration) {
  const std::string name = "steady-" + mix->name();
  return WorkloadSchedule(name, {Step{0.0, ebs, std::move(mix)}}, duration);
}

WorkloadSchedule WorkloadSchedule::ramp(std::shared_ptr<const Mix> mix,
                                        int start_ebs, int end_ebs,
                                        int step_ebs, double step_duration) {
  if (step_ebs <= 0) throw std::invalid_argument("ramp: step_ebs must be > 0");
  std::vector<Step> steps;
  double t = 0.0;
  const std::string name = "ramp-" + mix->name();
  if (end_ebs >= start_ebs) {
    for (int ebs = start_ebs; ebs <= end_ebs; ebs += step_ebs) {
      steps.push_back(Step{t, ebs, steps.empty() ? mix : nullptr});
      t += step_duration;
    }
  } else {
    for (int ebs = start_ebs; ebs >= end_ebs; ebs -= step_ebs) {
      steps.push_back(Step{t, ebs, steps.empty() ? mix : nullptr});
      t += step_duration;
    }
  }
  return WorkloadSchedule(name, std::move(steps), t);
}

WorkloadSchedule WorkloadSchedule::spike(std::shared_ptr<const Mix> mix,
                                         int base_ebs, int spike_ebs,
                                         double period, double spike_duration,
                                         double total_duration) {
  if (period <= spike_duration)
    throw std::invalid_argument("spike: period must exceed spike_duration");
  std::vector<Step> steps;
  steps.push_back(Step{0.0, base_ebs, mix});
  for (double t = period; t + spike_duration <= total_duration; t += period) {
    steps.push_back(Step{t, spike_ebs, nullptr});
    steps.push_back(Step{t + spike_duration, base_ebs, nullptr});
  }
  return WorkloadSchedule("spike-" + mix->name(), std::move(steps),
                          total_duration);
}

WorkloadSchedule WorkloadSchedule::interleaved(
    std::shared_ptr<const Mix> mix_a, int ebs_a,
    std::shared_ptr<const Mix> mix_b, int ebs_b, double segment_duration,
    double total_duration) {
  std::vector<Step> steps;
  const std::string name =
      "interleaved-" + mix_a->name() + "/" + mix_b->name();
  bool use_a = true;
  for (double t = 0.0; t < total_duration; t += segment_duration) {
    steps.push_back(
        Step{t, use_a ? ebs_a : ebs_b, use_a ? mix_a : mix_b});
    use_a = !use_a;
  }
  return WorkloadSchedule(name, std::move(steps), total_duration);
}

WorkloadSchedule WorkloadSchedule::concat(
    std::string name, const std::vector<WorkloadSchedule>& parts) {
  std::vector<Step> steps;
  double offset = 0.0;
  std::shared_ptr<const Mix> last_mix;
  for (const auto& part : parts) {
    for (Step s : part.steps()) {
      s.at += offset;
      // Each part starts with an explicit mix, so segments stay
      // self-describing after concatenation.
      steps.push_back(std::move(s));
    }
    offset += part.duration();
  }
  (void)last_mix;
  return WorkloadSchedule(std::move(name), std::move(steps), offset);
}

void WorkloadSchedule::apply(sim::EventQueue& eq, Rbe& rbe,
                             double start_time) const {
  for (const Step& step : steps_) {
    // Copy the shared_ptr into the closure; Step outlives nothing here.
    auto mix = step.mix;
    const int ebs = step.ebs;
    eq.schedule_at(start_time + step.at, [&rbe, mix, ebs] {
      if (mix) rbe.set_mix(mix);
      rbe.set_target_ebs(ebs);
    });
  }
}

int WorkloadSchedule::ebs_at(double t) const noexcept {
  int ebs = steps_.front().ebs;
  for (const Step& s : steps_) {
    if (s.at <= t) ebs = s.ebs;
    else break;
  }
  return ebs;
}

std::shared_ptr<const Mix> WorkloadSchedule::mix_at(double t) const noexcept {
  std::shared_ptr<const Mix> mix = steps_.front().mix;
  for (const Step& s : steps_) {
    if (s.at <= t) {
      if (s.mix) mix = s.mix;
    } else {
      break;
    }
  }
  return mix;
}

}  // namespace hpcap::tpcw
