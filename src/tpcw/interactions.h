// The TPC-W interaction catalog.
//
// TPC-W (www.tpc.org/tpcw) models an online bookstore with 14 web
// interaction types, each classified as *Browse* or *Order* (§IV.A of the
// paper). This module defines the catalog together with per-interaction
// execution profiles: how much CPU work an interaction performs on the
// application tier and the database tier, its memory footprint, and its
// instruction density.
//
// The profiles are calibrated to reproduce the load phenomenology the
// paper reports on its Tomcat/MySQL testbed:
//  * browse-class interactions (Best Sellers, Search Results, New
//    Products) run heavy, large-footprint database queries — a browsing
//    mix therefore bottlenecks the database tier;
//  * order-class interactions are numerous but individually light, with
//    most of their cost in servlet/session processing — an ordering mix
//    therefore bottlenecks the front-end application server.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "sim/request.h"

namespace hpcap::tpcw {

// The 14 interactions of the TPC-W specification.
enum class Interaction : std::uint8_t {
  kHome = 0,
  kNewProducts,
  kBestSellers,
  kProductDetail,
  kSearchRequest,
  kSearchResults,
  kShoppingCart,
  kCustomerRegistration,
  kBuyRequest,
  kBuyConfirm,
  kOrderInquiry,
  kOrderDisplay,
  kAdminRequest,
  kAdminConfirm,
};

inline constexpr int kNumInteractions = 14;

// Mean CPU demands (seconds) and execution character per interaction.
// Requests sampled from these profiles are log-normally distributed around
// the means (see RequestFactory).
struct InteractionProfile {
  Interaction type;
  std::string_view name;
  sim::RequestClass request_class;
  // Application-tier work before and after the database call.
  double app_pre_demand;
  double app_post_demand;
  // Database-tier work (0 for pure-servlet pages).
  double db_demand;
  // Coefficient of variation of sampled demands.
  double demand_cv;
  // Memory footprints (MB) for counter/thrash modeling.
  double app_footprint_mb;
  double db_footprint_mb;
  // Instruction densities (instructions per CPU-second of demand).
  double app_instr_density;
  double db_instr_density;
};

// Catalog indexed by static_cast<int>(Interaction).
const std::array<InteractionProfile, kNumInteractions>& interaction_catalog();

const InteractionProfile& profile_of(Interaction type);
std::string_view interaction_name(Interaction type);
sim::RequestClass class_of(Interaction type);

// True if the interaction belongs to TPC-W's Browse class.
bool is_browse(Interaction type);

}  // namespace hpcap::tpcw
