#include "sim/tier.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

namespace hpcap::sim {

namespace {
// Completions within this much virtual service of the head job are batched
// to absorb floating-point drift in the virtual clock.
constexpr double kVirtualEps = 1e-9;
constexpr double kMinDemand = 1e-9;
}  // namespace

Tier::Tier(EventQueue& eq, Config cfg) : eq_(eq), cfg_(std::move(cfg)) {
  last_update_ = eq_.now();
  sample_start_ = eq_.now();
}

double Tier::current_mem_stall() const noexcept {
  // Replicas split the live footprint: each copy's caches see only its
  // own share of the concurrently running jobs.
  const double f = live_footprint_mb_ / static_cast<double>(replicas_);
  if (f <= 0.0) return 0.0;
  return cfg_.mem_stall_max * f / (f + cfg_.mem_footprint_half_mb);
}

double Tier::current_efficiency() const noexcept {
  // Scheduling overhead scales with *runnable* jobs beyond the core count;
  // threads blocked on a downstream tier cost memory, not context
  // switches. With replicas, each copy schedules its 1/r share of the
  // runnable jobs on its own cores.
  const double per_replica =
      static_cast<double>(jobs_.size()) / static_cast<double>(replicas_);
  const double over =
      std::max(0.0, per_replica - static_cast<double>(cfg_.cores));
  const double thread_eff =
      1.0 / (1.0 + cfg_.thread_overhead_coeff *
                       std::pow(over, cfg_.thread_overhead_exp));
  const double mem_eff = 1.0 - current_mem_stall();
  return std::max(1e-3, thread_eff * mem_eff);
}

double Tier::capacity() const noexcept {
  const int n = static_cast<int>(jobs_.size());
  if (n == 0) return 0.0;
  const double parallel =
      static_cast<double>(std::min(n, effective_cores()));
  return parallel * current_efficiency();
}

void Tier::set_replicas(int replicas) {
  advance();
  replicas = std::max(1, replicas);
  if (replicas == replicas_) return;
  replicas_ = replicas;
  // A grown pool admits queued waiters immediately; a shrunk one drains
  // naturally (release_thread re-checks the effective bound).
  while (!waiters_.empty() && admitted_ < effective_pool()) {
    auto next = std::move(waiters_.front());
    waiters_.pop_front();
    ++admitted_;
    ++stats_.thread_grants;
    eq_.schedule_after(0.0, std::move(next));
  }
  reschedule_completion();  // delivered capacity just changed
}

void Tier::advance() {
  const SimTime now = eq_.now();
  const double dt = now - last_update_;
  if (dt <= 0.0) {
    last_update_ = now;
    return;
  }
  const int n = static_cast<int>(jobs_.size());
  const double cap = capacity();
  const double eff = current_efficiency();
  const double cores_busy =
      static_cast<double>(std::min(n, effective_cores()));

  stats_.thread_integral += static_cast<double>(admitted_) * dt;
  stats_.queue_integral += static_cast<double>(waiters_.size()) * dt;
  stats_.active_integral += static_cast<double>(n) * dt;
  stats_.footprint_integral += live_footprint_mb_ * dt;
  if (n > 0) {
    stats_.busy_time += dt;
    stats_.core_busy_seconds += cores_busy * dt;
    stats_.work_done += cap * dt;
    stats_.stall_core_seconds += cores_busy * (1.0 - eff) * dt;
    stats_.eff_busy_integral += eff * dt;
    // Per-job service rate r = cap / n; instruction rate is the sum over
    // jobs of r * density = (cap / n) * sum_density.
    const double r = cap / static_cast<double>(n);
    stats_.instr_done += r * sum_density_ * dt;
    v_ += r * dt;
  }
  last_update_ = now;
}

void Tier::acquire_thread(std::function<void()> granted) {
  advance();
  ++stats_.queue_arrivals;
  if (admitted_ < effective_pool()) {
    ++admitted_;
    ++stats_.thread_grants;
    reschedule_completion();  // efficiency depends on admitted_
    eq_.schedule_after(0.0, std::move(granted));
  } else {
    waiters_.push_back(std::move(granted));
  }
}

void Tier::release_thread() {
  advance();
  --admitted_;
  if (!waiters_.empty() && admitted_ < effective_pool()) {
    auto next = std::move(waiters_.front());
    waiters_.pop_front();
    ++admitted_;
    ++stats_.thread_grants;
    eq_.schedule_after(0.0, std::move(next));
  }
  reschedule_completion();
}

void Tier::execute(double demand, const JobTag& tag,
                   std::function<void()> done) {
  advance();
  demand = std::max(demand, kMinDemand);
  const JobKey key{v_ + demand, next_job_id_++};
  jobs_.emplace(key, ActiveJob{tag, demand, std::move(done)});
  sum_density_ += tag.instr_per_demand_sec;
  live_footprint_mb_ += tag.footprint_mb;
  ++stats_.job_starts;
  reschedule_completion();
}

void Tier::reschedule_completion() {
  const std::uint64_t gen = ++completion_generation_;
  if (jobs_.empty()) return;
  const double head_v = jobs_.begin()->first.first;
  const double cap = capacity();
  const int n = static_cast<int>(jobs_.size());
  const double r = cap / static_cast<double>(n);
  const double dt = std::max(0.0, (head_v - v_) / r);
  eq_.schedule_after(dt, [this, gen] {
    if (gen != completion_generation_) return;  // superseded
    advance();
    complete_ready_jobs();
  });
}

void Tier::complete_ready_jobs() {
  std::vector<ActiveJob> finished;
  while (!jobs_.empty() && jobs_.begin()->first.first <= v_ + kVirtualEps) {
    auto it = jobs_.begin();
    sum_density_ -= it->second.tag.instr_per_demand_sec;
    live_footprint_mb_ -= it->second.tag.footprint_mb;
    const auto cls = static_cast<int>(it->second.tag.request_class);
    ++stats_.completions;
    ++stats_.completions_by_class[cls];
    stats_.completed_demand += it->second.demand;
    stats_.completed_demand_by_class[cls] += it->second.demand;
    finished.push_back(std::move(it->second));
    jobs_.erase(it);
  }
  if (sum_density_ < 0.0) sum_density_ = 0.0;
  if (live_footprint_mb_ < 0.0) live_footprint_mb_ = 0.0;
  reschedule_completion();
  for (auto& job : finished) job.done();
}

Tier::IntervalStats Tier::sample_and_reset() {
  advance();
  IntervalStats out = stats_;
  // Interval duration is measured from sample boundary to sample boundary;
  // the caller samples on a fixed tick, so reconstruct it from busy/idle
  // integrals' reference clock.
  out.duration = eq_.now() - sample_start_;
  stats_ = IntervalStats{};
  sample_start_ = eq_.now();
  return out;
}

}  // namespace hpcap::sim
