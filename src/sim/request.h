// Request model shared by the simulator, the TPC-W workload layer and the
// testbed.
//
// A request is a sequence of *phases*, each a burst of CPU demand on one
// tier. A TPC-W "Search" interaction, for instance, is
//   [APP parse/dispatch] -> [DB query execution] -> [APP render page].
// The request holds its front-end worker thread for its whole lifetime
// (as a Tomcat servlet thread blocks on the JDBC call), which is what lets
// back-end slowness exhaust the front-end thread pool — a load dynamic the
// paper's bottleneck-shift analysis depends on.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_queue.h"

namespace hpcap::sim {

// Request classes per the TPC-W browse/order dichotomy (§IV.A).
enum class RequestClass : std::uint8_t { kBrowse = 0, kOrder = 1 };

struct Phase {
  int tier = 0;          // index into the testbed's tier array
  double demand = 0.0;   // CPU-seconds of work at that tier
  // Memory footprint (MB) touched while this phase executes. Drives the
  // synthetic cache/TLB counter model: concurrent large-footprint phases
  // overflow the modeled L2 and inflate miss rates.
  double footprint_mb = 0.0;
  // Instructions retired per CPU-second of demand (workload character;
  // scan-bound query code is sparser than servlet code).
  double instr_density = 2.0e9;
};

struct Request {
  std::uint64_t id = 0;
  int type = 0;  // index into the TPC-W interaction catalog
  RequestClass request_class = RequestClass::kBrowse;
  std::vector<Phase> phases;

  SimTime arrival_time = 0.0;
  SimTime first_service_time = -1.0;  // when the first phase started
  SimTime completion_time = -1.0;     // when the last phase finished

  bool completed() const noexcept { return completion_time >= 0.0; }
  double response_time() const noexcept {
    return completed() ? completion_time - arrival_time : -1.0;
  }
  // Total CPU demand across phases (used by workload-intensity accounting).
  double total_demand() const noexcept;
  // Total CPU demand placed on one tier.
  double demand_on_tier(int tier) const noexcept;
};

}  // namespace hpcap::sim
