#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace hpcap::sim {

void EventQueue::schedule_at(SimTime t, Callback cb) {
  heap_.push(Event{std::max(t, now_), next_seq_++, std::move(cb)});
}

void EventQueue::schedule_after(SimTime dt, Callback cb) {
  schedule_at(now_ + std::max(dt, 0.0), std::move(cb));
}

bool EventQueue::run_one() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; moving the callback out requires the
  // const_cast idiom. The event is popped immediately after.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = ev.time;
  ++executed_;
  ev.cb();
  return true;
}

void EventQueue::run_until(SimTime t) {
  while (!heap_.empty() && heap_.top().time <= t) run_one();
  now_ = std::max(now_, t);
}

void EventQueue::run_all(std::uint64_t max_events) {
  while (max_events-- > 0 && run_one()) {
  }
}

}  // namespace hpcap::sim
