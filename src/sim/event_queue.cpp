#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace hpcap::sim {

// Both sifts use the classic "hole" technique: the element being placed
// is held aside and ancestors/descendants are *moved* into the gap, one
// move per level instead of swap's three. Events carry a std::function,
// so the move count is what the sift costs.
void EventQueue::sift_up(std::size_t i) {
  Event ev = std::move(heap_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(heap_[parent], ev)) break;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = std::move(ev);
}

EventQueue::Event EventQueue::pop_earliest() {
  Event ev = std::move(heap_.front());
  const std::size_t n = heap_.size() - 1;
  if (n == 0) {
    heap_.pop_back();
    return ev;
  }
  // Bottom-up pop: the displaced last element almost always belongs near
  // a leaf, so walk the min-child path all the way down (one comparison
  // per level), drop it there, and let sift_up fix the rare overshoot —
  // cheaper than a textbook top-down sift, which pays an extra
  // belongs-here comparison at every level.
  Event last = std::move(heap_.back());
  heap_.pop_back();
  std::size_t i = 0;
  for (;;) {
    const std::size_t left = 2 * i + 1;
    if (left >= n) break;
    std::size_t first = left;
    if (left + 1 < n && later(heap_[left], heap_[left + 1])) first = left + 1;
    heap_[i] = std::move(heap_[first]);
    i = first;
  }
  heap_[i] = std::move(last);
  sift_up(i);
  return ev;
}

void EventQueue::schedule_at(SimTime t, Callback cb) {
  heap_.push_back(Event{std::max(t, now_), next_seq_++, std::move(cb)});
  sift_up(heap_.size() - 1);
}

void EventQueue::schedule_after(SimTime dt, Callback cb) {
  schedule_at(now_ + std::max(dt, 0.0), std::move(cb));
}

bool EventQueue::run_one() {
  if (heap_.empty()) return false;
  Event ev = pop_earliest();
  now_ = ev.time;
  ++executed_;
  ev.cb();
  return true;
}

void EventQueue::run_until(SimTime t) {
  while (!heap_.empty() && heap_.front().time <= t) run_one();
  now_ = std::max(now_, t);
}

void EventQueue::run_all(std::uint64_t max_events) {
  while (max_events-- > 0 && run_one()) {
  }
}

}  // namespace hpcap::sim
