// Deterministic offered-load traces (diurnal + flash crowd).
//
// The closed-loop scenarios (ISSUE 9) need an *offered* load that does
// not care what the site can absorb: a diurnal baseline (the daily
// sinusoid every production traffic graph shows) with a flash crowd
// superimposed — offered EB counts that can reach the millions while the
// site saturates in the thousands. A trace is a piecewise-constant
// function of time at `step` resolution, built from composable shapes;
// the controller decides how much of each step's offered load is
// admitted, and the shed remainder is accounted arithmetically (nothing
// in the simulator ever pays for a shed client).
//
// Traces are plain data: optional jitter is applied once, at build time,
// through a seeded Rng — two traces built with the same parameters are
// bit-identical, which the same-seed replay tests rely on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hpcap::sim {

class LoadTrace {
 public:
  // A flat trace: `duration` seconds at `level`, sampled every `step`.
  static LoadTrace constant(double level, double duration, double step);

  // A day-like sinusoid: offered(t) = base + amplitude * sin(...) with
  // one full cycle per `period` seconds, starting at the trough.
  static LoadTrace diurnal(double base, double amplitude, double period,
                           double duration, double step);

  // Superimposes a flash crowd: linear ramp from 0 to `peak` extra load
  // over [start, start+ramp), holds `peak` for `hold` seconds, then
  // decays linearly back to 0 over `decay` seconds.
  LoadTrace& add_flash_crowd(double start, double ramp, double hold,
                             double decay, double peak);

  // Multiplies every step by a deterministic lognormal-ish jitter factor
  // in [1-fraction, 1+fraction], drawn from a seeded stream.
  LoadTrace& add_jitter(std::uint64_t seed, double fraction);

  // Offered load at absolute time t (clamped to the trace's range).
  double offered_at(double t) const noexcept;

  double step() const noexcept { return step_; }
  double duration() const noexcept {
    return static_cast<double>(levels_.size()) * step_;
  }
  std::size_t steps() const noexcept { return levels_.size(); }
  const std::vector<double>& levels() const noexcept { return levels_; }
  double peak() const noexcept;

 private:
  LoadTrace(double step, std::size_t n);

  double step_ = 30.0;
  std::vector<double> levels_;
};

}  // namespace hpcap::sim
