#include "sim/request.h"

namespace hpcap::sim {

double Request::total_demand() const noexcept {
  double d = 0.0;
  for (const auto& p : phases) d += p.demand;
  return d;
}

double Request::demand_on_tier(int tier) const noexcept {
  double d = 0.0;
  for (const auto& p : phases)
    if (p.tier == tier) d += p.demand;
  return d;
}

}  // namespace hpcap::sim
