// A single tier of the multi-tier website: a multi-core CPU shared
// processor-style among runnable jobs, fronted by a bounded worker-thread
// (or DB-connection) pool with a FIFO wait queue.
//
// Two effects make the model exhibit the capacity phenomenology the paper
// studies (§I: "saturated throughput ... may drop sharply due to resource
// contention and algorithmic overhead"):
//
//  * Thread-contention overhead. Delivered CPU capacity is scaled by an
//    efficiency factor that decays as the number of admitted threads grows
//    past the core count (context switching, scheduler overhead, lock
//    convoys). Many light requests — the ordering mix — therefore drive
//    the front end past saturation into genuine throughput loss.
//
//  * Memory-system contention. Each job carries a memory footprint; the
//    aggregate live footprint of concurrently running jobs inflates a
//    stall fraction (cache/TLB thrash). A few heavy requests — the
//    browsing mix hitting the database — degrade productivity while the
//    OS-visible thread counts stay low, which is exactly the regime where
//    the paper finds OS metrics uninformative but HPC metrics accurate.
//
// The processor-sharing service is simulated exactly (no quantization)
// with the classic virtual-time construction: with equal shares, a job
// admitted when the attained-service clock reads V finishes when the clock
// reads V + demand, and the clock advances at rate capacity(n, m) / n.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "sim/event_queue.h"
#include "sim/request.h"

namespace hpcap::sim {

class Tier {
 public:
  struct Config {
    std::string name = "tier";
    int cores = 2;
    // Worker-thread / DB-connection pool size; requests beyond it queue.
    int thread_pool = 100;
    double freq_ghz = 2.0;  // clock, for cycle accounting
    // Thread-contention overhead: efficiency 1/(1 + k * (m - cores)^p)
    // once admitted threads m exceed the core count.
    double thread_overhead_coeff = 0.004;
    double thread_overhead_exp = 1.1;
    // Memory-stall model: the stalled fraction of busy cycles approaches
    // `mem_stall_max` as the live footprint grows past
    // `mem_footprint_half_mb` (the footprint at which half the maximum
    // stall is reached).
    double mem_stall_max = 0.6;
    double mem_footprint_half_mb = 256.0;
  };

  // Per-job execution character, used for capacity effects and surfaced to
  // the synthetic counter models.
  struct JobTag {
    double instr_per_demand_sec = 2.0e9;  // instruction density of the work
    double footprint_mb = 4.0;            // memory touched while running
    RequestClass request_class = RequestClass::kBrowse;
  };

  // Everything a metric model needs to know about one sampling interval.
  struct IntervalStats {
    double duration = 0.0;
    // Time integrals.
    double busy_time = 0.0;            // wall time with >=1 runnable job
    double core_busy_seconds = 0.0;    // ∫ min(n, cores) dt
    double work_done = 0.0;            // demand-seconds actually completed
    double instr_done = 0.0;           // instructions retired
    double stall_core_seconds = 0.0;   // ∫ min(n,cores)·(1-eff) dt
    double eff_busy_integral = 0.0;    // ∫ eff dt while busy
    double thread_integral = 0.0;      // ∫ admitted-threads dt
    double queue_integral = 0.0;       // ∫ wait-queue-length dt
    double active_integral = 0.0;      // ∫ runnable-jobs dt
    double footprint_integral = 0.0;   // ∫ live-footprint(MB) dt
    // Event counts.
    std::uint64_t completions = 0;
    std::uint64_t job_starts = 0;
    std::uint64_t thread_grants = 0;
    std::uint64_t queue_arrivals = 0;
    double completed_demand = 0.0;
    std::uint64_t completions_by_class[2] = {0, 0};
    double completed_demand_by_class[2] = {0.0, 0.0};

    // Derived conveniences.
    double utilization(int cores) const noexcept {
      return duration > 0.0
                 ? core_busy_seconds / (duration * static_cast<double>(cores))
                 : 0.0;
    }
    double mean_efficiency() const noexcept {
      return busy_time > 0.0 ? eff_busy_integral / busy_time : 1.0;
    }
    double mean_threads() const noexcept {
      return duration > 0.0 ? thread_integral / duration : 0.0;
    }
    double mean_queue() const noexcept {
      return duration > 0.0 ? queue_integral / duration : 0.0;
    }
    double mean_active() const noexcept {
      return duration > 0.0 ? active_integral / duration : 0.0;
    }
    double mean_footprint_mb() const noexcept {
      return duration > 0.0 ? footprint_integral / duration : 0.0;
    }
  };

  Tier(EventQueue& eq, Config cfg);

  Tier(const Tier&) = delete;
  Tier& operator=(const Tier&) = delete;

  const Config& config() const noexcept { return cfg_; }
  const std::string& name() const noexcept { return cfg_.name; }

  // Requests a worker thread; `granted` runs (as an event, FIFO order)
  // once one is available. The holder must call release_thread() exactly
  // once when done.
  void acquire_thread(std::function<void()> granted);
  void release_thread();

  // Runs `demand` CPU-seconds of work under processor sharing; `done` is
  // invoked (synchronously from the completion event) when finished.
  // A job does not need to hold a thread of *this* tier to execute — the
  // testbed decides pool semantics per tier.
  void execute(double demand, const JobTag& tag, std::function<void()> done);

  // Horizontal scaling (ISSUE 9 autoscaler seam). A tier with r replicas
  // models r identical, perfectly load-balanced copies behind one
  // virtual front: delivered capacity and the worker pool scale by r,
  // scheduler overhead is computed on the per-replica runnable share,
  // and the live memory footprint is spread across replicas before the
  // stall model sees it. Growth admits queued waiters immediately;
  // shrink takes effect as running work drains (no job is killed).
  void set_replicas(int replicas);
  int replicas() const noexcept { return replicas_; }
  int effective_cores() const noexcept { return cfg_.cores * replicas_; }
  int effective_pool() const noexcept {
    return cfg_.thread_pool * replicas_;
  }

  // Instantaneous gauges.
  int active_jobs() const noexcept { return static_cast<int>(jobs_.size()); }
  int admitted_threads() const noexcept { return admitted_; }
  int queued() const noexcept { return static_cast<int>(waiters_.size()); }
  // Aggregate memory footprint of currently running jobs (MB).
  double live_footprint_mb() const noexcept { return live_footprint_mb_; }
  // Current capacity-scaling efficiency in (0, 1].
  double current_efficiency() const noexcept;
  // Current fraction of busy cycles stalled on memory, in [0, 1).
  double current_mem_stall() const noexcept;

  // Advances integrals to now, returns the stats since the last call and
  // starts a fresh interval.
  IntervalStats sample_and_reset();

 private:
  struct ActiveJob {
    JobTag tag;
    double demand = 0.0;
    std::function<void()> done;
  };
  using JobKey = std::pair<double, std::uint64_t>;  // (finish_v, id)

  void advance();                 // integrate state up to eq_.now()
  void reschedule_completion();   // (re)arm the next-completion event
  void complete_ready_jobs();     // pop every job with finish_v <= V
  double capacity() const noexcept;  // delivered demand-sec per second

  EventQueue& eq_;
  Config cfg_;
  int replicas_ = 1;

  // Thread pool.
  int admitted_ = 0;
  std::deque<std::function<void()>> waiters_;

  // Processor sharing state.
  std::map<JobKey, ActiveJob> jobs_;  // ordered by virtual finish time
  double v_ = 0.0;                    // attained-service virtual clock
  double sum_density_ = 0.0;          // Σ instr_per_demand_sec over jobs_
  double live_footprint_mb_ = 0.0;    // Σ footprint over jobs_
  std::uint64_t next_job_id_ = 0;
  std::uint64_t completion_generation_ = 0;

  SimTime last_update_ = 0.0;
  SimTime sample_start_ = 0.0;
  IntervalStats stats_;
};

}  // namespace hpcap::sim
