#include "sim/load_trace.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace hpcap::sim {

namespace {
constexpr double kPi = 3.14159265358979323846;

std::size_t step_count(double duration, double step) {
  if (!(step > 0.0) || !(duration > 0.0))
    throw std::invalid_argument("LoadTrace: duration and step must be > 0");
  return static_cast<std::size_t>(std::ceil(duration / step - 1e-9));
}
}  // namespace

LoadTrace::LoadTrace(double step, std::size_t n)
    : step_(step), levels_(n, 0.0) {}

LoadTrace LoadTrace::constant(double level, double duration, double step) {
  LoadTrace t(step, step_count(duration, step));
  std::fill(t.levels_.begin(), t.levels_.end(), std::max(0.0, level));
  return t;
}

LoadTrace LoadTrace::diurnal(double base, double amplitude, double period,
                             double duration, double step) {
  if (!(period > 0.0))
    throw std::invalid_argument("LoadTrace::diurnal: period must be > 0");
  LoadTrace t(step, step_count(duration, step));
  for (std::size_t i = 0; i < t.levels_.size(); ++i) {
    // Sample mid-step; phase -pi/2 starts the day at the trough.
    const double at = (static_cast<double>(i) + 0.5) * step;
    const double phase = 2.0 * kPi * at / period - kPi / 2.0;
    t.levels_[i] = std::max(0.0, base + amplitude * std::sin(phase));
  }
  return t;
}

LoadTrace& LoadTrace::add_flash_crowd(double start, double ramp, double hold,
                                      double decay, double peak) {
  if (peak < 0.0)
    throw std::invalid_argument("LoadTrace::add_flash_crowd: peak < 0");
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    const double at = (static_cast<double>(i) + 0.5) * step_;
    const double since = at - start;
    double extra = 0.0;
    if (since >= 0.0 && since < ramp) {
      extra = ramp > 0.0 ? peak * since / ramp : peak;
    } else if (since >= ramp && since < ramp + hold) {
      extra = peak;
    } else if (since >= ramp + hold && since < ramp + hold + decay) {
      extra = decay > 0.0
                  ? peak * (1.0 - (since - ramp - hold) / decay)
                  : 0.0;
    }
    levels_[i] += extra;
  }
  return *this;
}

LoadTrace& LoadTrace::add_jitter(std::uint64_t seed, double fraction) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  if (fraction == 0.0) return *this;
  Rng rng(seed);
  for (double& level : levels_)
    level *= 1.0 + fraction * (2.0 * rng.uniform() - 1.0);
  return *this;
}

double LoadTrace::offered_at(double t) const noexcept {
  if (levels_.empty()) return 0.0;
  const double idx = std::floor(t / step_);
  const auto clamped = static_cast<std::size_t>(std::clamp(
      idx, 0.0, static_cast<double>(levels_.size() - 1)));
  return levels_[clamped];
}

double LoadTrace::peak() const noexcept {
  double best = 0.0;
  for (const double level : levels_) best = std::max(best, level);
  return best;
}

}  // namespace hpcap::sim
