// Discrete-event simulation engine.
//
// A single-threaded future-event list: callbacks scheduled at simulated
// times, executed in (time, insertion-order) order. Everything in the
// hpcap testbed — request arrivals, CPU completions, think-time expiries,
// metric sampling ticks — runs as events on one of these queues, so a whole
// experiment is a deterministic function of its configuration and RNG seed.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace hpcap::sim {

using SimTime = double;  // seconds of simulated time

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Schedules `cb` at absolute simulated time `t`. Times earlier than now()
  // are clamped to now() (the event still runs, immediately next).
  void schedule_at(SimTime t, Callback cb);

  // Schedules `cb` `dt` seconds from now. Negative dt is clamped to 0.
  void schedule_after(SimTime dt, Callback cb);

  SimTime now() const noexcept { return now_; }
  bool empty() const noexcept { return heap_.empty(); }
  std::size_t pending() const noexcept { return heap_.size(); }
  std::uint64_t executed() const noexcept { return executed_; }

  // Executes the earliest pending event; returns false if none.
  bool run_one();

  // Executes all events with time <= t, then advances the clock to t.
  void run_until(SimTime t);

  // Runs until the queue is empty or `max_events` were executed.
  void run_all(std::uint64_t max_events = UINT64_MAX);

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // tie-breaker: FIFO among equal-time events
    Callback cb;
  };
  // Strict-weak "fires later than": heap_[0] is the next event to run.
  static bool later(const Event& a, const Event& b) noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
  void sift_up(std::size_t i);
  // Removes and returns the earliest event. Non-const by design:
  // std::priority_queue's const top() forces the move-out-via-const_cast
  // idiom, which this in-house binary heap over a flat vector avoids.
  Event pop_earliest();

  // Binary min-heap (by `later`) laid out in the usual implicit-tree
  // order: children of i at 2i+1 / 2i+2.
  std::vector<Event> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace hpcap::sim
