// Generic K-tier service pipeline.
//
// The paper's method — per-tier synopses fused by a GPV-indexed
// coordinated predictor — is defined for any number of tiers, but its
// evaluation (and this repo's `testbed`) uses the two-tier TPC-W site.
// This module provides the K-tier substrate: a closed-loop population of
// synthetic clients driving a chain of processor-sharing tiers
// (web → app → db → ..., each with its own worker pool and contention
// profile), with the same 1 Hz HPC sampling and 30 s instance windows the
// testbed produces. The `three_tier` example and the mtier tests use it
// to demonstrate bottleneck identification with K = 3.
//
// Requests belong to weighted classes; each class specifies its CPU
// demand and memory footprint per tier. A request holds a front-tier
// worker for its whole lifetime and each downstream tier's worker for the
// duration of its phase there — the same blocking structure as the
// TPC-W testbed, generalized.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/labeling.h"
#include "counters/sampler.h"
#include "sim/event_queue.h"
#include "sim/tier.h"
#include "util/rng.h"

namespace hpcap::mtier {

struct JobClass {
  std::string name;
  double weight = 1.0;                 // selection weight
  std::vector<double> tier_demand;     // CPU-seconds per tier
  std::vector<double> tier_footprint;  // MB per tier
  double demand_cv = 0.35;
  sim::RequestClass request_class = sim::RequestClass::kBrowse;
};

struct PipelineConfig {
  std::vector<sim::Tier::Config> tiers;
  std::vector<JobClass> classes;
  double think_time_mean = 3.0;
  double sample_period = 1.0;
  int samples_per_instance = 30;
  std::uint64_t seed = 7;
};

// One 30 s window, shaped like testbed::InstanceRecord but K tiers wide.
struct PipelineInstance {
  double end_time = 0.0;
  std::vector<std::vector<double>> hpc;  // [tier][metric]
  core::WindowHealth health;
  int population = 0;
  int bottleneck_tier = -1;              // measured pressure argmax
  std::vector<double> tier_utilization;
  // Replica count per tier during the window (autoscaler telemetry).
  std::vector<int> tier_replicas;
  // Response-time tail over the window's completions (0 when none) —
  // the "p99 within budget" evidence the closed-loop scenarios cite.
  double rt_p95 = 0.0;
  double rt_p99 = 0.0;
};

class Pipeline {
 public:
  explicit Pipeline(PipelineConfig cfg);

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  int tier_count() const noexcept { return static_cast<int>(tiers_.size()); }

  // Sets the closed-loop client population (effective immediately for
  // growth, at the next think boundary for shrink).
  void set_population(int clients);

  // Reweights the job classes (takes effect for subsequently issued
  // requests) — the knob that moves the bottleneck between tiers.
  void set_class_weights(const std::vector<double>& weights);

  // Horizontal scaling of one tier (the ctrl/autoscale actuation seam):
  // see sim::Tier::set_replicas for the plant model.
  void set_tier_replicas(int tier, int replicas);
  int tier_replicas(int tier) const;

  // Advances the simulation by `duration` seconds.
  void run(double duration);

  const std::vector<PipelineInstance>& instances() const noexcept {
    return instances_;
  }
  sim::Tier& tier(int index) { return *tiers_.at(static_cast<size_t>(index)); }
  sim::EventQueue& events() noexcept { return eq_; }

 private:
  struct Job;
  void spawn_client(std::uint64_t id);
  void client_think(std::uint64_t id);
  void client_issue(std::uint64_t id);
  void run_phase(const std::shared_ptr<Job>& job);
  void finish(const std::shared_ptr<Job>& job);
  void sampling_tick();
  void arm_sampler(double until);

  PipelineConfig cfg_;
  sim::EventQueue eq_;
  std::vector<std::unique_ptr<sim::Tier>> tiers_;
  std::vector<std::unique_ptr<counters::HpcCollector>> collectors_;
  std::vector<counters::InstanceAggregator> aggregators_;
  Rng rng_;

  int target_population_ = 0;
  int live_clients_ = 0;
  std::uint64_t next_client_id_ = 0;

  // Window accumulation.
  std::uint64_t window_completed_ = 0;
  std::uint64_t window_issued_ = 0;
  double window_rt_sum_ = 0.0;
  std::vector<double> window_rts_;  // per-completion RTs for the tail
  std::vector<double> window_util_sum_;
  std::vector<double> window_pressure_sum_;
  int window_ticks_ = 0;

  std::vector<PipelineInstance> instances_;
  double run_end_ = 0.0;
  bool sampler_armed_ = false;
};

}  // namespace hpcap::mtier
