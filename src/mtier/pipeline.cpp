#include "mtier/pipeline.h"

#include <algorithm>
#include <stdexcept>

namespace hpcap::mtier {

struct Pipeline::Job {
  std::uint64_t client_id = 0;
  std::size_t job_class = 0;
  double start_time = 0.0;
  std::vector<double> demands;  // sampled per tier
  std::size_t phase = 0;        // current tier index
};

Pipeline::Pipeline(PipelineConfig cfg)
    : cfg_(std::move(cfg)), rng_(cfg_.seed) {
  if (cfg_.tiers.empty())
    throw std::invalid_argument("Pipeline: need >= 1 tier");
  if (cfg_.classes.empty())
    throw std::invalid_argument("Pipeline: need >= 1 job class");
  for (const auto& jc : cfg_.classes) {
    if (jc.tier_demand.size() != cfg_.tiers.size() ||
        jc.tier_footprint.size() != cfg_.tiers.size())
      throw std::invalid_argument(
          "Pipeline: class '" + jc.name + "' demand/footprint width must "
          "match tier count");
  }
  for (std::size_t t = 0; t < cfg_.tiers.size(); ++t) {
    tiers_.push_back(std::make_unique<sim::Tier>(eq_, cfg_.tiers[t]));
    collectors_.push_back(std::make_unique<counters::HpcCollector>(
        cfg_.tiers[t], counters::HpcModel::Params{},
        cfg_.seed * 97 + t));
    aggregators_.emplace_back(counters::hpc_catalog().size(),
                              cfg_.samples_per_instance);
  }
  window_util_sum_.assign(tiers_.size(), 0.0);
  window_pressure_sum_.assign(tiers_.size(), 0.0);
}

void Pipeline::set_population(int clients) {
  target_population_ = std::max(0, clients);
  while (live_clients_ < target_population_) {
    ++live_clients_;
    spawn_client(next_client_id_++);
  }
}

void Pipeline::set_class_weights(const std::vector<double>& weights) {
  if (weights.size() != cfg_.classes.size())
    throw std::invalid_argument("set_class_weights: width mismatch");
  for (std::size_t i = 0; i < weights.size(); ++i)
    cfg_.classes[i].weight = weights[i];
}

void Pipeline::set_tier_replicas(int tier, int replicas) {
  if (tier < 0 || tier >= static_cast<int>(tiers_.size()))
    throw std::out_of_range("set_tier_replicas: tier");
  tiers_[static_cast<std::size_t>(tier)]->set_replicas(replicas);
}

int Pipeline::tier_replicas(int tier) const {
  if (tier < 0 || tier >= static_cast<int>(tiers_.size()))
    throw std::out_of_range("tier_replicas: tier");
  return tiers_[static_cast<std::size_t>(tier)]->replicas();
}

void Pipeline::spawn_client(std::uint64_t id) { client_think(id); }

void Pipeline::client_think(std::uint64_t id) {
  eq_.schedule_after(rng_.exponential(cfg_.think_time_mean),
                     [this, id] { client_issue(id); });
}

void Pipeline::client_issue(std::uint64_t id) {
  if (live_clients_ > target_population_) {
    --live_clients_;  // retire at the navigation boundary
    return;
  }
  std::vector<double> weights;
  weights.reserve(cfg_.classes.size());
  for (const auto& jc : cfg_.classes) weights.push_back(jc.weight);
  auto job = std::make_shared<Job>();
  job->client_id = id;
  job->job_class = rng_.categorical(weights);
  job->start_time = eq_.now();
  const auto& jc = cfg_.classes[job->job_class];
  job->demands.resize(cfg_.tiers.size());
  for (std::size_t t = 0; t < cfg_.tiers.size(); ++t)
    job->demands[t] =
        jc.tier_demand[t] > 0.0
            ? rng_.lognormal_mean_cv(jc.tier_demand[t], jc.demand_cv)
            : 0.0;
  ++window_issued_;
  // The front tier's worker is held for the whole request.
  tiers_[0]->acquire_thread([this, job] { run_phase(job); });
}

void Pipeline::run_phase(const std::shared_ptr<Job>& job) {
  if (job->phase >= tiers_.size()) {
    finish(job);
    return;
  }
  const std::size_t t = job->phase++;
  const auto& jc = cfg_.classes[job->job_class];
  if (job->demands[t] <= 0.0) {
    run_phase(job);
    return;
  }
  sim::Tier::JobTag tag;
  tag.footprint_mb = jc.tier_footprint[t];
  tag.request_class = jc.request_class;
  const auto execute = [this, job, t, tag] {
    tiers_[t]->execute(job->demands[t], tag, [this, job, t] {
      if (t != 0) tiers_[t]->release_thread();
      run_phase(job);
    });
  };
  if (t == 0) {
    execute();  // worker already held
  } else {
    tiers_[t]->acquire_thread(execute);
  }
}

void Pipeline::finish(const std::shared_ptr<Job>& job) {
  tiers_[0]->release_thread();
  ++window_completed_;
  const double rt = eq_.now() - job->start_time;
  window_rt_sum_ += rt;
  window_rts_.push_back(rt);
  client_think(job->client_id);
}

void Pipeline::arm_sampler(double until) {
  const double next = eq_.now() + cfg_.sample_period;
  if (next > until + 1e-9) {
    sampler_armed_ = false;
    return;
  }
  eq_.schedule_at(next, [this, until] {
    sampling_tick();
    arm_sampler(until);
  });
}

void Pipeline::sampling_tick() {
  ++window_ticks_;
  std::vector<std::vector<double>> window_rows(tiers_.size());
  bool window_closed = false;
  for (std::size_t t = 0; t < tiers_.size(); ++t) {
    const auto stats = tiers_[t]->sample_and_reset();
    // Utilization and queue pressure normalize against the tier's
    // *effective* (replica-scaled) resources, so a scaled-out tier reads
    // as relieved, not as impossibly >100% busy.
    const double util = stats.utilization(tiers_[t]->effective_cores());
    window_util_sum_[t] += util;
    const double pool =
        std::max(1.0, static_cast<double>(tiers_[t]->effective_pool()));
    window_pressure_sum_[t] +=
        util + 0.3 * std::min(1.0, stats.mean_queue() / pool);
    auto sample = collectors_[t]->collect(stats);
    if (auto inst = aggregators_[t].add(sample)) {
      window_rows[t] = std::move(*inst);
      window_closed = true;
    }
  }
  if (!window_closed) return;

  PipelineInstance rec;
  rec.end_time = eq_.now();
  rec.hpc = std::move(window_rows);
  const double seconds = window_ticks_ * cfg_.sample_period;
  rec.health.throughput =
      static_cast<double>(window_completed_) / seconds;
  rec.health.offered_rate =
      static_cast<double>(window_issued_) / seconds;
  rec.health.mean_response_time =
      window_completed_
          ? window_rt_sum_ / static_cast<double>(window_completed_)
          : 0.0;
  rec.population = target_population_;
  if (!window_rts_.empty()) {
    std::sort(window_rts_.begin(), window_rts_.end());
    const auto quantile = [&](double q) {
      const auto n = window_rts_.size();
      const std::size_t idx = std::min(
          n - 1, static_cast<std::size_t>(q * static_cast<double>(n)));
      return window_rts_[idx];
    };
    rec.rt_p95 = quantile(0.95);
    rec.rt_p99 = quantile(0.99);
  }
  rec.tier_utilization.resize(tiers_.size());
  rec.tier_replicas.resize(tiers_.size());
  double best = -1.0;
  for (std::size_t t = 0; t < tiers_.size(); ++t) {
    rec.tier_utilization[t] = window_util_sum_[t] / window_ticks_;
    rec.tier_replicas[t] = tiers_[t]->replicas();
    const double pressure = window_pressure_sum_[t] / window_ticks_;
    if (pressure > best) {
      best = pressure;
      rec.bottleneck_tier = static_cast<int>(t);
    }
  }
  window_completed_ = 0;
  window_issued_ = 0;
  window_rt_sum_ = 0.0;
  window_rts_.clear();
  window_ticks_ = 0;
  std::fill(window_util_sum_.begin(), window_util_sum_.end(), 0.0);
  std::fill(window_pressure_sum_.begin(), window_pressure_sum_.end(), 0.0);
  instances_.push_back(std::move(rec));
}

void Pipeline::run(double duration) {
  run_end_ = eq_.now() + duration;
  if (!sampler_armed_) {
    sampler_armed_ = true;
    arm_sampler(run_end_);
  }
  eq_.run_until(run_end_);
}

}  // namespace hpcap::mtier
