// hpcapctl — command-line front end to the hpcap library.
//
// Subcommands:
//   capacity  --mix <browsing|shopping|ordering|FRACTION> [--skew S]
//       Analytic and stress-measured capacity of the simulated testbed
//       for a traffic mix.
//   train     --out FILE [--level hpc|os] [--learner TAN|SVM|Naive|LR]
//             [--seed N] [--history-bits H] [--delta D] [--pessimistic]
//       Runs the paper's offline training recipe (ramp + spike + hover on
//       the browsing and ordering mixes), builds the synopses and the
//       coordinated predictor, and saves the monitor bundle.
//   evaluate  --model FILE --workload <ordering|browsing|interleaved|
//             unknown|shopping> [--seed N]
//       Replays a fresh test workload against a saved monitor and reports
//       overload / bottleneck accuracy.
//   monitor   --model FILE --workload W [--duration SECONDS] [--seed N]
//       Streams per-window decisions (state, Hc, bottleneck) next to the
//       simulator's ground truth.
//   collect   --out FILE --workload W [--recipe train|test] [--seed N]
//       Runs a workload and archives the labeled 30 s instances as CSV
//       (testbed/trace.h format) for offline analysis.
//
// Everything is deterministic given --seed.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/model_io.h"
#include "testbed/trace.h"
#include "ml/evaluate.h"
#include "testbed/experiment.h"
#include "util/table.h"

using namespace hpcap;

namespace {

// Minimal flag parser: --name value pairs plus boolean switches.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument '%s'\n", key.c_str());
        std::exit(2);
      }
      key = key.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
        values_[key] = argv[++i];
      else
        values_[key] = "";
    }
  }

  std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    return it == values_.end() ? std::nullopt
                               : std::optional<std::string>(it->second);
  }
  std::string get_or(const std::string& key, const std::string& def) const {
    return get(key).value_or(def);
  }
  double num_or(const std::string& key, double def) const {
    const auto v = get(key);
    return v ? std::stod(*v) : def;
  }
  bool has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

std::shared_ptr<const tpcw::Mix> parse_mix(const std::string& name,
                                           double skew) {
  if (name == "browsing")
    return std::make_shared<const tpcw::Mix>(tpcw::browsing_mix());
  if (name == "shopping")
    return std::make_shared<const tpcw::Mix>(tpcw::shopping_mix());
  if (name == "ordering")
    return std::make_shared<const tpcw::Mix>(tpcw::ordering_mix());
  if (name == "unknown") return testbed::unknown_mix();
  // A numeric browse fraction builds a custom mix.
  const double fraction = std::stod(name);
  return std::make_shared<const tpcw::Mix>(
      tpcw::Mix::with_class_fractions("custom", fraction, skew));
}

ml::LearnerKind parse_learner(const std::string& name) {
  if (name == "LR") return ml::LearnerKind::kLinearRegression;
  if (name == "Naive") return ml::LearnerKind::kNaiveBayes;
  if (name == "SVM") return ml::LearnerKind::kSvm;
  if (name == "TAN") return ml::LearnerKind::kTan;
  std::fprintf(stderr, "unknown learner '%s'\n", name.c_str());
  std::exit(2);
}

tpcw::WorkloadSchedule parse_workload(const std::string& name,
                                      const testbed::TestbedConfig& cfg) {
  if (name == "interleaved") {
    return testbed::interleaved_schedule(
        std::make_shared<const tpcw::Mix>(tpcw::browsing_mix()),
        std::make_shared<const tpcw::Mix>(tpcw::ordering_mix()), cfg);
  }
  return testbed::testing_schedule(parse_mix(name, 0.0), cfg);
}

int cmd_capacity(const Args& args) {
  testbed::TestbedConfig cfg = testbed::TestbedConfig::paper_defaults();
  cfg.seed = static_cast<std::uint64_t>(args.num_or("seed", cfg.seed));
  const auto mix =
      parse_mix(args.get_or("mix", "shopping"), args.num_or("skew", 0.0));
  const auto cap = testbed::measure_capacity(*mix, cfg);
  TextTable t("Capacity of '" + mix->name() + "' (browse fraction " +
              TextTable::num(mix->browse_fraction(), 2) + ")");
  t.set_header({"estimator", "req/s", "EBs", "bottleneck"});
  t.add_row({"analytic (uncontended MVA)",
             TextTable::num(cap.analytic.saturation_rps, 1),
             std::to_string(cap.analytic.saturation_ebs),
             cap.analytic.bottleneck_tier == testbed::kAppTier ? "app"
                                                               : "db"});
  t.add_row({"measured (stress calibration)",
             TextTable::num(cap.saturation_rps, 1),
             std::to_string(cap.saturation_ebs), "-"});
  std::printf("%s", t.render().c_str());
  return 0;
}

int cmd_train(const Args& args) {
  const auto out_path = args.get("out");
  if (!out_path) {
    std::fprintf(stderr, "train: --out FILE is required\n");
    return 2;
  }
  testbed::TestbedConfig cfg = testbed::TestbedConfig::paper_defaults();
  cfg.seed = static_cast<std::uint64_t>(args.num_or("seed", cfg.seed));
  const std::string level = args.get_or("level", "hpc");
  const auto learner = parse_learner(args.get_or("learner", "TAN"));

  std::printf("Collecting training runs (browsing + ordering)...\n");
  const auto browsing =
      std::make_shared<const tpcw::Mix>(tpcw::browsing_mix());
  const auto ordering =
      std::make_shared<const tpcw::Mix>(tpcw::ordering_mix());
  const auto train_b =
      testbed::collect(testbed::training_schedule(browsing, cfg), cfg);
  const auto train_o =
      testbed::collect(testbed::training_schedule(ordering, cfg), cfg);

  core::CoordinatedPredictor::Options opts;
  opts.num_tiers = testbed::kNumTiers;
  opts.history_bits = static_cast<int>(args.num_or("history-bits", 3));
  opts.delta = static_cast<int>(args.num_or("delta", 5));
  if (args.has("pessimistic")) opts.scheme = core::TieScheme::kPessimistic;

  std::printf("Building %s synopses (%s level) and coordinated tables...\n",
              ml::learner_name(learner).c_str(), level.c_str());
  const core::CapacityMonitor monitor = testbed::build_monitor(
      {{"ordering", &train_o}, {"browsing", &train_b}}, level, learner,
      opts);

  std::ofstream f(*out_path);
  if (!f) {
    std::fprintf(stderr, "train: cannot open '%s'\n", out_path->c_str());
    return 1;
  }
  core::save_monitor(f, monitor);
  std::printf("Saved monitor (%zu synopses) to %s\n",
              monitor.synopses().size(), out_path->c_str());
  return 0;
}

std::optional<core::CapacityMonitor> load_model(const Args& args) {
  const auto path = args.get("model");
  if (!path) {
    std::fprintf(stderr, "--model FILE is required\n");
    return std::nullopt;
  }
  std::ifstream f(*path);
  if (!f) {
    std::fprintf(stderr, "cannot open '%s'\n", path->c_str());
    return std::nullopt;
  }
  return core::load_monitor(f);
}

int cmd_evaluate(const Args& args) {
  auto monitor = load_model(args);
  if (!monitor) return 1;
  const std::string level = monitor->synopses().front().spec().level;

  testbed::TestbedConfig cfg = testbed::TestbedConfig::paper_defaults();
  cfg.seed = static_cast<std::uint64_t>(args.num_or("seed", 4242));
  const std::string workload = args.get_or("workload", "interleaved");
  const auto run = testbed::collect(parse_workload(workload, cfg), cfg);
  const auto bottlenecks =
      testbed::bottleneck_annotations(run.instances, run.labels);

  monitor->predictor().reset_history();
  ml::Confusion overload;
  std::size_t bn_total = 0, bn_hit = 0;
  for (std::size_t i = 0; i < run.instances.size(); ++i) {
    const auto d =
        monitor->observe(testbed::monitor_rows(run.instances[i], level));
    overload.add(run.labels[i], d.state);
    if (run.labels[i] == 1) {
      ++bn_total;
      bn_hit += d.state == 1 && d.bottleneck_tier == bottlenecks[i];
    }
  }
  std::printf("workload=%s windows=%zu overloaded=%zu\n", workload.c_str(),
              run.instances.size(),
              static_cast<std::size_t>(overload.tp + overload.fn));
  std::printf("overload prediction: BA %.3f (TPR %.3f, TNR %.3f)\n",
              overload.balanced_accuracy(), overload.tpr(), overload.tnr());
  if (bn_total)
    std::printf("bottleneck identification: %.3f\n",
                static_cast<double>(bn_hit) /
                    static_cast<double>(bn_total));
  return 0;
}

int cmd_monitor(const Args& args) {
  auto monitor = load_model(args);
  if (!monitor) return 1;
  const std::string level = monitor->synopses().front().spec().level;

  testbed::TestbedConfig cfg = testbed::TestbedConfig::paper_defaults();
  cfg.seed = static_cast<std::uint64_t>(args.num_or("seed", 777));
  const std::string workload = args.get_or("workload", "interleaved");
  auto schedule = parse_workload(workload, cfg);
  const double duration = args.num_or("duration", schedule.duration());

  monitor->predictor().reset_history();
  core::HealthLabeler labeler;
  testbed::Testbed bed(cfg);
  std::printf("%-8s %-12s %6s %8s %6s  %s\n", "time", "mix", "EBs",
              "tput", "truth", "decision");
  bed.set_instance_observer([&](const testbed::InstanceRecord& rec) {
    if (rec.end_time > duration) return;
    const auto d = monitor->observe(testbed::monitor_rows(rec, level));
    const int truth = labeler.label(rec.health);
    std::printf("%-8.0f %-12s %6d %8.1f %6s  %s hc=%+d%s\n", rec.end_time,
                rec.mix_name.c_str(), rec.ebs, rec.health.throughput,
                truth ? "OVER" : "ok", d.state ? "OVERLOAD" : "healthy",
                d.hc,
                d.state && d.bottleneck_tier >= 0
                    ? (d.bottleneck_tier == testbed::kAppTier
                           ? " bottleneck=app"
                           : " bottleneck=db")
                    : "");
  });
  bed.run(schedule);
  return 0;
}

int cmd_collect(const Args& args) {
  const auto out_path = args.get("out");
  if (!out_path) {
    std::fprintf(stderr, "collect: --out FILE is required\n");
    return 2;
  }
  testbed::TestbedConfig cfg = testbed::TestbedConfig::paper_defaults();
  cfg.seed = static_cast<std::uint64_t>(args.num_or("seed", cfg.seed));
  const std::string workload = args.get_or("workload", "shopping");
  const std::string recipe = args.get_or("recipe", "test");

  tpcw::WorkloadSchedule schedule =
      recipe == "train" && workload != "interleaved"
          ? testbed::training_schedule(parse_mix(workload, 0.0), cfg)
          : parse_workload(workload, cfg);
  const auto run = testbed::collect(schedule, cfg);

  std::ofstream f(*out_path);
  if (!f) {
    std::fprintf(stderr, "collect: cannot open '%s'\n", out_path->c_str());
    return 1;
  }
  testbed::write_trace(f, run.instances, run.labels);
  std::printf("Wrote %zu labeled instances (%s, %s recipe) to %s\n",
              run.instances.size(), workload.c_str(), recipe.c_str(),
              out_path->c_str());
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: hpcapctl <capacity|train|evaluate|monitor|collect> "
               "[--flag value ...]\n"
               "see the header of tools/hpcapctl.cpp for details\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const Args args(argc, argv);
  if (cmd == "capacity") return cmd_capacity(args);
  if (cmd == "train") return cmd_train(args);
  if (cmd == "evaluate") return cmd_evaluate(args);
  if (cmd == "monitor") return cmd_monitor(args);
  if (cmd == "collect") return cmd_collect(args);
  usage();
  return 2;
}
