// hpcapctl — command-line front end to the hpcap library.
//
// Subcommands:
//   capacity  --mix <browsing|shopping|ordering|FRACTION> [--skew S]
//       Analytic and stress-measured capacity of the simulated testbed
//       for a traffic mix.
//   train     --out FILE [--level hpc|os] [--learner TAN|SVM|Naive|LR]
//             [--seed N] [--history-bits H] [--delta D] [--pessimistic]
//       Runs the paper's offline training recipe (ramp + spike + hover on
//       the browsing and ordering mixes), builds the synopses and the
//       coordinated predictor, and saves the monitor bundle.
//   evaluate  --model FILE --workload <ordering|browsing|interleaved|
//             unknown|shopping> [--seed N]
//       Replays a fresh test workload against a saved monitor and reports
//       overload / bottleneck accuracy.
//   monitor   --model FILE --workload W [--duration SECONDS] [--seed N]
//       Streams per-window decisions (state, Hc, bottleneck) next to the
//       simulator's ground truth.
//   collect   --out FILE --workload W [--recipe train|test] [--seed N]
//       Runs a workload and archives the labeled 30 s instances as CSV
//       (testbed/trace.h format) for offline analysis.
//   serve     --model FILE [--port N] [--bind ADDR] [--num-tiers K] ...
//       Runs the hpcapd capacity-monitoring daemon in the foreground
//       (same wire protocol and signals as the hpcapd binary).
//   stream    --port N --trace FILE [--host ADDR] [--level hpc|os]
//             [--window W] [--batch B] [--retries N] [--backoff-ms MS]
//             [--deadline-s S] [--stats] [--shutdown]
//       Replays an archived trace (collect) over the socket to a running
//       daemon and prints the decisions it streams back. --retries opts
//       into resilient sessions: the client reconnects with jittered
//       exponential backoff (starting at --backoff-ms, capped by the
//       per-outage --deadline-s budget) and resumes the session
//       exactly-once, so faults never duplicate or drop a decision.
//
// `hpcapctl --version` prints the wire-protocol and model-format
// versions, so agents and daemons can be checked for compatibility.
// Exit codes: 0 success, 1 runtime failure (bad trace/model file), 2
// usage error, and for `stream`: 3 transport failure (unreachable or
// lost daemon, budget exhausted), 4 wire-protocol violation, 5 daemon
// rejected the session. Everything is deterministic given --seed.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <initializer_list>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/model_io.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "testbed/trace.h"
#include "ml/evaluate.h"
#include "testbed/experiment.h"
#include "util/log.h"
#include "util/table.h"

using namespace hpcap;

namespace {

// Minimal flag parser: --name value pairs plus boolean switches.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument '%s'\n", key.c_str());
        std::exit(2);
      }
      key = key.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
        values_[key] = argv[++i];
      else
        values_[key] = "";
    }
  }

  std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    return it == values_.end() ? std::nullopt
                               : std::optional<std::string>(it->second);
  }
  std::string get_or(const std::string& key, const std::string& def) const {
    return get(key).value_or(def);
  }
  double num_or(const std::string& key, double def) const {
    const auto v = get(key);
    return v ? std::stod(*v) : def;
  }
  bool has(const std::string& key) const { return values_.count(key) > 0; }

  // Every subcommand declares its flag set; anything else is a typo the
  // user should hear about rather than a silently ignored option.
  bool reject_unknown(const char* cmd,
                      std::initializer_list<const char*> allowed) const {
    bool ok = true;
    for (const auto& [key, value] : values_) {
      bool known = false;
      for (const char* a : allowed) known = known || key == a;
      if (!known) {
        std::fprintf(stderr, "%s: unrecognized flag '--%s'\n", cmd,
                     key.c_str());
        ok = false;
      }
    }
    return ok;
  }

 private:
  std::map<std::string, std::string> values_;
};

std::shared_ptr<const tpcw::Mix> parse_mix(const std::string& name,
                                           double skew) {
  if (name == "browsing")
    return std::make_shared<const tpcw::Mix>(tpcw::browsing_mix());
  if (name == "shopping")
    return std::make_shared<const tpcw::Mix>(tpcw::shopping_mix());
  if (name == "ordering")
    return std::make_shared<const tpcw::Mix>(tpcw::ordering_mix());
  if (name == "unknown") return testbed::unknown_mix();
  // A numeric browse fraction builds a custom mix.
  const double fraction = std::stod(name);
  return std::make_shared<const tpcw::Mix>(
      tpcw::Mix::with_class_fractions("custom", fraction, skew));
}

ml::LearnerKind parse_learner(const std::string& name) {
  if (name == "LR") return ml::LearnerKind::kLinearRegression;
  if (name == "Naive") return ml::LearnerKind::kNaiveBayes;
  if (name == "SVM") return ml::LearnerKind::kSvm;
  if (name == "TAN") return ml::LearnerKind::kTan;
  std::fprintf(stderr, "unknown learner '%s'\n", name.c_str());
  std::exit(2);
}

tpcw::WorkloadSchedule parse_workload(const std::string& name,
                                      const testbed::TestbedConfig& cfg) {
  if (name == "interleaved") {
    return testbed::interleaved_schedule(
        std::make_shared<const tpcw::Mix>(tpcw::browsing_mix()),
        std::make_shared<const tpcw::Mix>(tpcw::ordering_mix()), cfg);
  }
  return testbed::testing_schedule(parse_mix(name, 0.0), cfg);
}

int cmd_capacity(const Args& args) {
  testbed::TestbedConfig cfg = testbed::TestbedConfig::paper_defaults();
  cfg.seed = static_cast<std::uint64_t>(
      args.num_or("seed", static_cast<double>(cfg.seed)));
  const auto mix =
      parse_mix(args.get_or("mix", "shopping"), args.num_or("skew", 0.0));
  const auto cap = testbed::measure_capacity(*mix, cfg);
  TextTable t("Capacity of '" + mix->name() + "' (browse fraction " +
              TextTable::num(mix->browse_fraction(), 2) + ")");
  t.set_header({"estimator", "req/s", "EBs", "bottleneck"});
  t.add_row({"analytic (uncontended MVA)",
             TextTable::num(cap.analytic.saturation_rps, 1),
             std::to_string(cap.analytic.saturation_ebs),
             cap.analytic.bottleneck_tier == testbed::kAppTier ? "app"
                                                               : "db"});
  t.add_row({"measured (stress calibration)",
             TextTable::num(cap.saturation_rps, 1),
             std::to_string(cap.saturation_ebs), "-"});
  std::printf("%s", t.render().c_str());
  return 0;
}

int cmd_train(const Args& args) {
  const auto out_path = args.get("out");
  if (!out_path) {
    std::fprintf(stderr, "train: --out FILE is required\n");
    return 2;
  }
  testbed::TestbedConfig cfg = testbed::TestbedConfig::paper_defaults();
  cfg.seed = static_cast<std::uint64_t>(
      args.num_or("seed", static_cast<double>(cfg.seed)));
  const std::string level = args.get_or("level", "hpc");
  const auto learner = parse_learner(args.get_or("learner", "TAN"));

  std::printf("Collecting training runs (browsing + ordering)...\n");
  const auto browsing =
      std::make_shared<const tpcw::Mix>(tpcw::browsing_mix());
  const auto ordering =
      std::make_shared<const tpcw::Mix>(tpcw::ordering_mix());
  const auto train_b =
      testbed::collect(testbed::training_schedule(browsing, cfg), cfg);
  const auto train_o =
      testbed::collect(testbed::training_schedule(ordering, cfg), cfg);

  core::CoordinatedPredictor::Options opts;
  opts.num_tiers = testbed::kNumTiers;
  opts.history_bits = static_cast<int>(args.num_or("history-bits", 3));
  opts.delta = static_cast<int>(args.num_or("delta", 5));
  if (args.has("pessimistic")) opts.scheme = core::TieScheme::kPessimistic;

  std::printf("Building %s synopses (%s level) and coordinated tables...\n",
              ml::learner_name(learner).c_str(), level.c_str());
  const core::CapacityMonitor monitor = testbed::build_monitor(
      {{"ordering", &train_o}, {"browsing", &train_b}}, level, learner,
      opts);

  std::ofstream f(*out_path);
  if (!f) {
    std::fprintf(stderr, "train: cannot open '%s'\n", out_path->c_str());
    return 1;
  }
  core::save_monitor(f, monitor);
  std::printf("Saved monitor (%zu synopses) to %s\n",
              monitor.synopses().size(), out_path->c_str());
  return 0;
}

std::optional<core::CapacityMonitor> load_model(const Args& args) {
  const auto path = args.get("model");
  if (!path) {
    std::fprintf(stderr, "--model FILE is required\n");
    return std::nullopt;
  }
  std::ifstream f(*path);
  if (!f) {
    std::fprintf(stderr, "cannot open '%s'\n", path->c_str());
    return std::nullopt;
  }
  return core::load_monitor(f);
}

int cmd_evaluate(const Args& args) {
  auto monitor = load_model(args);
  if (!monitor) return 1;
  const std::string level = monitor->synopses().front().spec().level;

  testbed::TestbedConfig cfg = testbed::TestbedConfig::paper_defaults();
  cfg.seed = static_cast<std::uint64_t>(args.num_or("seed", 4242));
  const std::string workload = args.get_or("workload", "interleaved");
  const auto run = testbed::collect(parse_workload(workload, cfg), cfg);
  const auto bottlenecks =
      testbed::bottleneck_annotations(run.instances, run.labels);

  monitor->predictor().reset_history();
  ml::Confusion overload;
  std::size_t bn_total = 0, bn_hit = 0;
  for (std::size_t i = 0; i < run.instances.size(); ++i) {
    const auto d =
        monitor->observe(testbed::monitor_rows(run.instances[i], level));
    overload.add(run.labels[i], d.state);
    if (run.labels[i] == 1) {
      ++bn_total;
      bn_hit += d.state == 1 && d.bottleneck_tier == bottlenecks[i];
    }
  }
  std::printf("workload=%s windows=%zu overloaded=%zu\n", workload.c_str(),
              run.instances.size(),
              static_cast<std::size_t>(overload.tp + overload.fn));
  std::printf("overload prediction: BA %.3f (TPR %.3f, TNR %.3f)\n",
              overload.balanced_accuracy(), overload.tpr(), overload.tnr());
  if (bn_total)
    std::printf("bottleneck identification: %.3f\n",
                static_cast<double>(bn_hit) /
                    static_cast<double>(bn_total));
  return 0;
}

int cmd_monitor(const Args& args) {
  auto monitor = load_model(args);
  if (!monitor) return 1;
  const std::string level = monitor->synopses().front().spec().level;

  testbed::TestbedConfig cfg = testbed::TestbedConfig::paper_defaults();
  cfg.seed = static_cast<std::uint64_t>(args.num_or("seed", 777));
  const std::string workload = args.get_or("workload", "interleaved");
  auto schedule = parse_workload(workload, cfg);
  const double duration = args.num_or("duration", schedule.duration());

  monitor->predictor().reset_history();
  core::HealthLabeler labeler;
  testbed::Testbed bed(cfg);
  std::printf("%-8s %-12s %6s %8s %6s  %s\n", "time", "mix", "EBs",
              "tput", "truth", "decision");
  bed.set_instance_observer([&](const testbed::InstanceRecord& rec) {
    if (rec.end_time > duration) return;
    const auto d = monitor->observe(testbed::monitor_rows(rec, level));
    const int truth = labeler.label(rec.health);
    std::printf("%-8.0f %-12s %6d %8.1f %6s  %s hc=%+d%s\n", rec.end_time,
                rec.mix_name.c_str(), rec.ebs, rec.health.throughput,
                truth ? "OVER" : "ok", d.state ? "OVERLOAD" : "healthy",
                d.hc,
                d.state && d.bottleneck_tier >= 0
                    ? (d.bottleneck_tier == testbed::kAppTier
                           ? " bottleneck=app"
                           : " bottleneck=db")
                    : "");
  });
  bed.run(schedule);
  return 0;
}

int cmd_collect(const Args& args) {
  const auto out_path = args.get("out");
  if (!out_path) {
    std::fprintf(stderr, "collect: --out FILE is required\n");
    return 2;
  }
  testbed::TestbedConfig cfg = testbed::TestbedConfig::paper_defaults();
  cfg.seed = static_cast<std::uint64_t>(
      args.num_or("seed", static_cast<double>(cfg.seed)));
  const std::string workload = args.get_or("workload", "shopping");
  const std::string recipe = args.get_or("recipe", "test");

  tpcw::WorkloadSchedule schedule =
      recipe == "train" && workload != "interleaved"
          ? testbed::training_schedule(parse_mix(workload, 0.0), cfg)
          : parse_workload(workload, cfg);
  const auto run = testbed::collect(schedule, cfg);

  std::ofstream f(*out_path);
  if (!f) {
    std::fprintf(stderr, "collect: cannot open '%s'\n", out_path->c_str());
    return 1;
  }
  testbed::write_trace(f, run.instances, run.labels);
  std::printf("Wrote %zu labeled instances (%s, %s recipe) to %s\n",
              run.instances.size(), workload.c_str(), recipe.c_str(),
              out_path->c_str());
  return 0;
}

int cmd_serve(const Args& args) {
  const auto model = args.get("model");
  if (!model) {
    std::fprintf(stderr, "serve: --model FILE is required\n");
    return 2;
  }
  net::ServerConfig cfg;
  cfg.port = static_cast<std::uint16_t>(args.num_or("port", 0));
  cfg.bind_address = args.get_or("bind", cfg.bind_address);
  cfg.num_tiers =
      static_cast<int>(args.num_or("num-tiers", testbed::kNumTiers));
  cfg.idle_timeout = args.num_or("idle-timeout", cfg.idle_timeout);
  cfg.handshake_timeout =
      args.num_or("handshake-timeout", cfg.handshake_timeout);
  cfg.max_write_queue = static_cast<std::size_t>(
      args.num_or("max-write-queue", static_cast<double>(cfg.max_write_queue)));
  cfg.session_linger = args.num_or("session-linger", cfg.session_linger);
  cfg.decision_replay = static_cast<std::size_t>(args.num_or(
      "decision-replay", static_cast<double>(cfg.decision_replay)));
  cfg.reactors =
      static_cast<std::size_t>(args.num_or("reactors", 1.0));
  if (cfg.reactors < 1) {
    std::fprintf(stderr, "serve: --reactors must be >= 1\n");
    return 2;
  }
  const std::string control = args.get_or("control", "auto");
  if (control == "auto")
    cfg.control_policy = net::ControlPolicy::kAuto;
  else if (control == "allow")
    cfg.control_policy = net::ControlPolicy::kAllow;
  else if (control == "deny")
    cfg.control_policy = net::ControlPolicy::kDeny;
  else {
    std::fprintf(stderr, "serve: unknown control policy '%s'\n",
                 control.c_str());
    return 2;
  }
  if (args.has("verbose")) set_log_level(LogLevel::kInfo);
  try {
    return net::run_daemon(cfg, *model, /*install_signals=*/true);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve: %s\n", e.what());
    return 1;
  }
}

// Strict numeric flag parsing for the stream subcommand: the resilience
// knobs control retry budgets, so a typo must be a usage error (exit 2),
// never a silently-zero budget.
std::optional<double> strict_number(const Args& args, const char* flag,
                                    double def, double min_value) {
  const auto raw = args.get(flag);
  if (!raw) return def;
  char* end = nullptr;
  const double v = std::strtod(raw->c_str(), &end);
  if (raw->empty() || end != raw->c_str() + raw->size() || !(v >= min_value)) {
    std::fprintf(stderr, "stream: --%s needs a number >= %g, got '%s'\n",
                 flag, min_value, raw->c_str());
    return std::nullopt;
  }
  return v;
}

int cmd_stream(const Args& args) {
  const auto trace_path = args.get("trace");
  const auto port = args.get("port");
  if (!trace_path || !port) {
    std::fprintf(stderr, "stream: --trace FILE and --port N are required\n");
    return 2;
  }
  const std::string host = args.get_or("host", "127.0.0.1");
  const std::string level = args.get_or("level", "hpc");
  const int window = static_cast<int>(args.num_or("window", 1));
  const int batch = std::max(1, static_cast<int>(args.num_or("batch", 64)));
  const bool quiet = args.has("quiet");

  const auto retries = strict_number(args, "retries", 0.0, 0.0);
  const auto backoff_ms = strict_number(args, "backoff-ms", 50.0, 1.0);
  const auto deadline_s = strict_number(args, "deadline-s", 60.0, 0.001);
  if (!retries || !backoff_ms || !deadline_s) return 2;
  net::RetryPolicy policy = net::RetryPolicy::none();
  if (*retries > 0.0) {
    policy = net::RetryPolicy{};
    policy.max_attempts = static_cast<int>(*retries);
    policy.initial_backoff = *backoff_ms / 1000.0;
    policy.deadline = *deadline_s;
  }

  try {
    // Connect and handshake before touching the trace file: an
    // unreachable or hostile daemon reports as a transport/protocol
    // failure (exit 3/4/5) independent of local file problems (exit 1).
    net::Client client;
    client.set_retry_policy(policy);
    client.connect(host, static_cast<std::uint16_t>(std::stod(*port)));
    net::HelloRequest hello;
    hello.agent = args.get_or("agent", "hpcapctl-stream");
    hello.level = level;
    hello.num_tiers = static_cast<std::uint16_t>(
        args.num_or("num-tiers", testbed::kNumTiers));
    hello.window = static_cast<std::uint16_t>(window);
    const auto reply = client.hello(hello);
    if (!reply.accepted) {
      std::fprintf(stderr, "stream: daemon rejected HELLO: %s\n",
                   reply.message.c_str());
      return 5;
    }

    std::ifstream f(*trace_path);
    if (!f) {
      std::fprintf(stderr, "stream: cannot open '%s'\n",
                   trace_path->c_str());
      return 1;
    }
    std::vector<int> labels;
    const auto records = testbed::read_trace(f, &labels);
    if (records.empty()) {
      std::fprintf(stderr, "stream: trace has no instances\n");
      return 1;
    }
    if (records[0].hpc.size() != reply.dims.size()) {
      std::fprintf(stderr,
                   "stream: trace has %zu tiers but the daemon expects %zu\n",
                   records[0].hpc.size(), reply.dims.size());
      return 1;
    }
    std::printf("connected to %s:%s — model v%u, window %d, %zu instances\n",
                host.c_str(), port->c_str(), reply.model_version, window,
                records.size());

    // Each archived instance becomes one sampling tick; with the default
    // --window 1 every tick closes a window, so decisions line up 1:1
    // with the trace's labeled instances.
    ml::Confusion confusion;
    std::size_t decisions = 0, degraded = 0;
    const auto consume = [&](const net::DecisionFrame& d) {
      // A window spans `window` consecutive trace instances; score the
      // decision against the label of the window's first instance.
      const std::size_t first = static_cast<std::size_t>(d.window_index) *
                                static_cast<std::size_t>(window);
      const int truth = first < labels.size() ? labels[first] : -1;
      if (truth >= 0) confusion.add(truth, d.state);
      degraded += d.degraded != 0;
      ++decisions;
      if (!quiet)
        std::printf("window %5u  %-8s hc=%+d%s%s\n", d.window_index,
                    d.state ? "OVERLOAD" : "healthy", d.hc,
                    d.state && d.bottleneck_tier >= 0
                        ? (" bottleneck=tier" +
                           std::to_string(d.bottleneck_tier))
                              .c_str()
                        : "",
                    d.degraded ? " [degraded]" : "");
    };

    // The batch's tick/slot vectors are sized once and overwritten in
    // place each round, so the steady-state encode+send loop reuses both
    // this storage and the client's internal encode scratch.
    net::SampleBatch pending;
    pending.ticks.resize(static_cast<std::size_t>(batch));
    std::size_t used = 0;
    std::uint32_t tick = 0;
    for (const auto& rec : records) {
      if (used == 0) pending.first_tick = tick;
      net::Tick& t = pending.ticks[used++];
      const auto rows = testbed::monitor_rows(rec, level);
      const auto validity = testbed::monitor_row_validity(rec, level);
      t.tiers.resize(rows.size());
      for (std::size_t i = 0; i < rows.size(); ++i) {
        t.tiers[i].present = validity[i] != 0;
        if (t.tiers[i].present)
          t.tiers[i].values.assign(rows[i].begin(), rows[i].end());
      }
      ++tick;
      if (used == static_cast<std::size_t>(batch)) {
        client.send_batch(pending);
        used = 0;
        for (const auto& d : client.drain_decisions()) consume(d);
      }
    }
    if (used > 0) {
      pending.ticks.resize(used);  // final partial batch
      client.send_batch(pending);
    }

    const std::size_t expected =
        records.size() / static_cast<std::size_t>(window);
    while (decisions < expected) consume(client.next_decision());

    std::printf("%zu decisions (%zu degraded)\n", decisions, degraded);
    if (confusion.tp + confusion.fn + confusion.fp + confusion.tn > 0)
      std::printf("vs trace labels: BA %.3f (TPR %.3f, TNR %.3f)\n",
                  confusion.balanced_accuracy(), confusion.tpr(),
                  confusion.tnr());
    if (policy.enabled()) {
      const auto s = client.session();
      std::printf(
          "session: %llu reconnects, %llu batches replayed, "
          "%llu decisions deduped\n",
          static_cast<unsigned long long>(s.reconnects),
          static_cast<unsigned long long>(s.replayed_batches),
          static_cast<unsigned long long>(s.deduped_decisions));
    }
    if (args.has("stats")) {
      const auto stats = client.stats();
      TextTable t("daemon stats");
      t.set_header({"counter", "value"});
      for (const auto& [key, value] : stats.entries)
        t.add_row({key, std::to_string(value)});
      std::printf("%s", t.render().c_str());
    }
    if (args.has("shutdown")) {
      client.shutdown_server();
      std::printf("daemon shut down\n");
    }
    return 0;
  } catch (const net::SessionLost& e) {
    std::fprintf(stderr, "stream: %s\n", e.what());
    return 5;
  } catch (const net::ProtocolError& e) {
    std::fprintf(stderr, "stream: %s\n", e.what());
    return 4;
  } catch (const net::TransportError& e) {
    std::fprintf(stderr, "stream: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "stream: %s\n", e.what());
    return 1;
  }
}

void usage() {
  std::fprintf(
      stderr,
      "usage: hpcapctl "
      "<capacity|train|evaluate|monitor|collect|serve|stream> "
      "[--flag value ...]\n"
      "       hpcapctl --version\n"
      "see the header of tools/hpcapctl.cpp for details\n");
}

int print_version() {
  std::printf("hpcapctl protocol v%u, model format %s\n",
              static_cast<unsigned>(net::kProtocolVersion),
              net::kModelFormatVersion);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "--version" || cmd == "version") return print_version();
  const Args args(argc, argv);
  const auto run = [&](const char* name,
                       std::initializer_list<const char*> allowed,
                       int (*fn)(const Args&)) {
    if (!args.reject_unknown(name, allowed)) {
      usage();
      return 2;
    }
    return fn(args);
  };
  if (cmd == "capacity")
    return run("capacity", {"mix", "skew", "seed"}, cmd_capacity);
  if (cmd == "train")
    return run("train",
               {"out", "level", "learner", "seed", "history-bits", "delta",
                "pessimistic"},
               cmd_train);
  if (cmd == "evaluate")
    return run("evaluate", {"model", "workload", "seed"}, cmd_evaluate);
  if (cmd == "monitor")
    return run("monitor", {"model", "workload", "duration", "seed"},
               cmd_monitor);
  if (cmd == "collect")
    return run("collect", {"out", "workload", "recipe", "seed"},
               cmd_collect);
  if (cmd == "serve")
    return run("serve",
               {"model", "port", "bind", "num-tiers", "idle-timeout",
                "handshake-timeout", "max-write-queue", "session-linger",
                "decision-replay", "control", "reactors", "verbose"},
               cmd_serve);
  if (cmd == "stream")
    return run("stream",
               {"host", "port", "trace", "level", "window", "batch",
                "num-tiers", "retries", "backoff-ms", "deadline-s", "agent",
                "stats", "shutdown", "quiet"},
               cmd_stream);
  std::fprintf(stderr, "hpcapctl: unknown subcommand '%s'\n", cmd.c_str());
  usage();
  return 2;
}
