# Runs clang's Thread Safety Analysis (-Wthread-safety) over the src/
# translation units. The tree's mutexes are util::Mutex / util::MutexLock
# (util/mutex.h), which carry the capability attributes from
# util/thread_annotations.h, so clang can prove every GUARDED_BY /
# REQUIRES contract at compile time. Invoked by the lint.thread_safety
# ctest and by tools/check.sh lint.
#
# clang is optional tooling: when no clang++ is on PATH this script
# prints a notice and exits 0; the ctest registration turns that message
# into a SKIP via SKIP_REGULAR_EXPRESSION, so the lint label stays green
# on GCC-only machines (where the annotations compile away to nothing)
# while still enforcing the analysis wherever LLVM is available.
find_program(CLANGXX_EXE NAMES clang++ clang++-18 clang++-17 clang++-16
             clang++-15 clang++-14)
if(NOT CLANGXX_EXE)
  message(STATUS "clang not installed — skipping the thread-safety leg")
  return()
endif()

file(GLOB_RECURSE TS_SOURCES "${SOURCE_DIR}/src/*.cpp")
list(SORT TS_SOURCES)
set(FAILED 0)
foreach(src IN LISTS TS_SOURCES)
  # -fsyntax-only: analysis is a frontend pass, no codegen needed.
  execute_process(COMMAND "${CLANGXX_EXE}" -fsyntax-only -std=c++20
                          "-I${SOURCE_DIR}/src"
                          -Wthread-safety -Werror=thread-safety
                          "${src}"
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(STATUS "thread-safety: ${src}\n${out}${err}")
    set(FAILED 1)
  endif()
endforeach()
if(FAILED)
  message(FATAL_ERROR "-Wthread-safety found issues (see above)")
endif()
message(STATUS "thread-safety clean over src/")
