// hpcapd — the streaming capacity-monitoring daemon (src/net/).
//
// Loads a trained monitor bundle (hpcapctl train) and serves the hpcap
// wire protocol: agents connect, HELLO with their metric level and window
// size, stream per-tier counter samples, and receive per-window
// overload/bottleneck Decisions. SIGHUP re-loads the model file in place
// (validated before the swap; live sessions and connections survive);
// SIGINT/SIGTERM drain and exit.
//
//   hpcapd --model FILE [--port N] [--bind ADDR] [--num-tiers K]
//          [--idle-timeout S] [--handshake-timeout S]
//          [--max-write-queue N] [--session-linger S]
//          [--decision-replay N] [--control auto|allow|deny]
//          [--reactors N] [--shard-mode auto|reuseport|handoff]
//          [--parent HOST:PORT] [--leaf-name NAME]
//          [--coverage I,J,...] [--fanin N]
//          [--log-level debug|info|warn|error] [--version]
//
// RELOAD/SHUTDOWN frames carry no peer authentication, so by default
// (--control auto) they are honored only on a loopback bind; --control
// allow opts a non-loopback bind in, --control deny refuses them even
// on loopback (SIGHUP/SIGTERM still work).
//
// Fleet topology (ISSUE 8): --reactors N runs N sharded event loops
// behind one port (SO_REUSEPORT kernel steering where available,
// accept-and-hand-off otherwise). --parent HOST:PORT makes this daemon a
// leaf of an aggregation tree: every decided window's synopsis votes
// stream to the parent hpcapd, which merges the fleet's disjoint slices
// and streams fleet decisions back. --coverage lists the parent-side
// synopsis indices this leaf owns (default: all of the local model's);
// --fanin bounds how many leaves a parent accepts.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/protocol.h"
#include "net/server.h"
#include "util/log.h"

namespace {

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: hpcapd --model FILE [--port N] [--bind ADDR]\n"
               "              [--num-tiers K] [--idle-timeout S]\n"
               "              [--handshake-timeout S] [--max-write-queue N]\n"
               "              [--session-linger S] [--decision-replay N]\n"
               "              [--control auto|allow|deny]\n"
               "              [--reactors N] "
               "[--shard-mode auto|reuseport|handoff]\n"
               "              [--parent HOST:PORT] [--leaf-name NAME]\n"
               "              [--coverage I,J,...] [--fanin N]\n"
               "              [--ctrl-advisory] [--ctrl-min-cap X]\n"
               "              [--ctrl-max-cap X]\n"
               "              [--log-level debug|info|warn|error]\n"
               "       hpcapd --version\n");
}

// Strict numeric parsing: a flag value that is not entirely a number is a
// usage error, not a silent zero (hpcap-lint banned-function contract).
long parse_long(const char* flag, const char* s) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "hpcapd: %s needs an integer, got '%s'\n", flag, s);
    std::exit(2);
  }
  return v;
}

double parse_double(const char* flag, const char* s) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "hpcapd: %s needs a number, got '%s'\n", flag, s);
    std::exit(2);
  }
  return v;
}

bool parse_log_level(const std::string& name, hpcap::LogLevel* out) {
  if (name == "debug") *out = hpcap::LogLevel::kDebug;
  else if (name == "info") *out = hpcap::LogLevel::kInfo;
  else if (name == "warn") *out = hpcap::LogLevel::kWarn;
  else if (name == "error") *out = hpcap::LogLevel::kError;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  hpcap::net::ServerConfig cfg;
  std::string model;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hpcapd: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--version") {
      std::printf("hpcapd protocol v%u, model format %s\n",
                  static_cast<unsigned>(hpcap::net::kProtocolVersion),
                  hpcap::net::kModelFormatVersion);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (arg == "--model") {
      model = value();
    } else if (arg == "--port") {
      cfg.port = static_cast<std::uint16_t>(parse_long("--port", value()));
    } else if (arg == "--bind") {
      cfg.bind_address = value();
    } else if (arg == "--num-tiers") {
      cfg.num_tiers = static_cast<int>(parse_long("--num-tiers", value()));
    } else if (arg == "--idle-timeout") {
      cfg.idle_timeout = parse_double("--idle-timeout", value());
    } else if (arg == "--handshake-timeout") {
      cfg.handshake_timeout = parse_double("--handshake-timeout", value());
    } else if (arg == "--max-write-queue") {
      cfg.max_write_queue =
          static_cast<std::size_t>(parse_long("--max-write-queue", value()));
    } else if (arg == "--session-linger") {
      cfg.session_linger = parse_double("--session-linger", value());
    } else if (arg == "--decision-replay") {
      const long n = parse_long("--decision-replay", value());
      if (n < 1) {
        std::fprintf(stderr, "hpcapd: --decision-replay must be >= 1\n");
        return 2;
      }
      cfg.decision_replay = static_cast<std::size_t>(n);
    } else if (arg == "--reactors") {
      const long n = parse_long("--reactors", value());
      if (n < 1) {
        std::fprintf(stderr, "hpcapd: --reactors must be >= 1\n");
        return 2;
      }
      cfg.reactors = static_cast<std::size_t>(n);
    } else if (arg == "--shard-mode") {
      const std::string mode = value();
      if (mode == "auto")
        cfg.shard_mode = hpcap::net::ShardMode::kAuto;
      else if (mode == "reuseport")
        cfg.shard_mode = hpcap::net::ShardMode::kReuseport;
      else if (mode == "handoff")
        cfg.shard_mode = hpcap::net::ShardMode::kHandoff;
      else {
        std::fprintf(stderr, "hpcapd: unknown shard mode '%s'\n",
                     mode.c_str());
        return 2;
      }
    } else if (arg == "--parent") {
      const std::string hostport = value();
      const std::size_t colon = hostport.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == hostport.size()) {
        std::fprintf(stderr, "hpcapd: --parent needs HOST:PORT, got '%s'\n",
                     hostport.c_str());
        return 2;
      }
      cfg.parent_host = hostport.substr(0, colon);
      cfg.parent_port = static_cast<std::uint16_t>(
          parse_long("--parent", hostport.c_str() + colon + 1));
    } else if (arg == "--leaf-name") {
      cfg.leaf_name = value();
    } else if (arg == "--coverage") {
      std::string list = value();
      cfg.agg_coverage.clear();
      std::size_t at = 0;
      while (at <= list.size()) {
        std::size_t comma = list.find(',', at);
        if (comma == std::string::npos) comma = list.size();
        const std::string item = list.substr(at, comma - at);
        if (item.empty()) {
          std::fprintf(stderr, "hpcapd: --coverage has an empty entry\n");
          return 2;
        }
        cfg.agg_coverage.push_back(static_cast<std::uint16_t>(
            parse_long("--coverage", item.c_str())));
        at = comma + 1;
      }
    } else if (arg == "--fanin") {
      const long n = parse_long("--fanin", value());
      if (n < 1) {
        std::fprintf(stderr, "hpcapd: --fanin must be >= 1\n");
        return 2;
      }
      cfg.agg_fanin = static_cast<std::size_t>(n);
    } else if (arg == "--control") {
      const std::string policy = value();
      if (policy == "auto")
        cfg.control_policy = hpcap::net::ControlPolicy::kAuto;
      else if (policy == "allow")
        cfg.control_policy = hpcap::net::ControlPolicy::kAllow;
      else if (policy == "deny")
        cfg.control_policy = hpcap::net::ControlPolicy::kDeny;
      else {
        std::fprintf(stderr, "hpcapd: unknown control policy '%s'\n",
                     policy.c_str());
        return 2;
      }
    } else if (arg == "--ctrl-advisory") {
      cfg.ctrl_advisory = true;
    } else if (arg == "--ctrl-min-cap") {
      cfg.ctrl_min_cap = parse_double("--ctrl-min-cap", value());
    } else if (arg == "--ctrl-max-cap") {
      cfg.ctrl_max_cap = parse_double("--ctrl-max-cap", value());
    } else if (arg == "--log-level") {
      hpcap::LogLevel level;
      if (!parse_log_level(value(), &level)) {
        std::fprintf(stderr, "hpcapd: unknown log level\n");
        return 2;
      }
      hpcap::set_log_level(level);
    } else {
      std::fprintf(stderr, "hpcapd: unknown argument '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  if (model.empty()) {
    std::fprintf(stderr, "hpcapd: --model FILE is required\n");
    usage(stderr);
    return 2;
  }

  try {
    return hpcap::net::run_daemon(cfg, model, /*install_signals=*/true);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}
