#!/usr/bin/env bash
# One-command verification gate: the default build + full suite, the
# bench-smoke parallel-overhead guard, and the sanitizer suites that the
# tsan/asan ctest labels mark.
#
# Usage: tools/check.sh [fast|full]
#   fast (default) - default build: full ctest + bench-smoke + net labels
#   full           - fast, plus -DHPCAP_TSAN=ON (ctest -L tsan) and
#                    -DHPCAP_ASAN=ON (ctest -L asan) builds
#
# Exits non-zero on the first failing step. Build trees: build/,
# build-tsan/, build-asan/ under the repo root.
set -euo pipefail

mode="${1:-fast}"
case "$mode" in
  fast|full) ;;
  *) echo "usage: $0 [fast|full]" >&2; exit 2 ;;
esac

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"

step() { printf '\n== %s ==\n' "$*"; }

step "default build"
cmake -B "$root/build" -S "$root" >/dev/null
cmake --build "$root/build" -j "$jobs"

step "full test suite"
ctest --test-dir "$root/build" --output-on-failure

step "bench-smoke guard (parallel overhead)"
ctest --test-dir "$root/build" -L bench-smoke --output-on-failure

step "net suite (hpcapd wire protocol + loopback)"
ctest --test-dir "$root/build" -L net --output-on-failure

if [ "$mode" = "full" ]; then
  step "tsan build + ctest -L tsan (includes net loopback/swap suites)"
  cmake -B "$root/build-tsan" -S "$root" -DHPCAP_TSAN=ON >/dev/null
  cmake --build "$root/build-tsan" -j "$jobs"
  ctest --test-dir "$root/build-tsan" -L tsan --output-on-failure
  ctest --test-dir "$root/build-tsan" -L net --output-on-failure

  step "asan build + ctest -L asan (includes net protocol/loopback suites)"
  cmake -B "$root/build-asan" -S "$root" -DHPCAP_ASAN=ON >/dev/null
  cmake --build "$root/build-asan" -j "$jobs"
  ctest --test-dir "$root/build-asan" -L asan --output-on-failure
  ctest --test-dir "$root/build-asan" -L net --output-on-failure
fi

step "all checks passed ($mode)"
