#!/usr/bin/env bash
# One-command verification gate: the default build + full suite, the
# bench-smoke guards (parallel overhead, batched-observe speedup,
# loopback wire batching), the static-analysis gate, and the sanitizer
# suites that the tsan/asan/ubsan ctest labels mark.
#
# Usage: tools/check.sh [fast|full|lint]
#   fast (default) - default build: full ctest + bench-smoke + net labels
#   full           - fast, plus -DHPCAP_TSAN=ON (ctest -L tsan),
#                    -DHPCAP_ASAN=ON (ctest -L asan) and
#                    -DHPCAP_UBSAN=ON (ctest -L ubsan) builds
#   lint           - static analysis only: build + run hpcap_lint
#                    (self-test, then the whole tree, then once more as
#                    --json for machine consumers), clang-tidy over src/
#                    when clang-tidy is installed, and clang's
#                    -Wthread-safety analysis when clang++ is installed
#
# Exits non-zero on the first failing step. Build trees: build/,
# build-tsan/, build-asan/, build-ubsan/ under the repo root.
set -euo pipefail

mode="${1:-fast}"
case "$mode" in
  fast|full|lint) ;;
  *) echo "usage: $0 [fast|full|lint]" >&2; exit 2 ;;
esac

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"

step() { printf '\n== %s ==\n' "$*"; }

if [ "$mode" = "lint" ]; then
  step "configure + build hpcap_lint"
  cmake -B "$root/build" -S "$root" >/dev/null
  cmake --build "$root/build" -j "$jobs" --target hpcap_lint

  step "hpcap_lint self-test (every rule fires on seeded violations)"
  "$root/build/tools/hpcap_lint" --self-test

  step "hpcap_lint over the tree"
  "$root/build/tools/hpcap_lint" --root "$root"

  step "hpcap_lint --json (machine-readable findings, written to build/)"
  "$root/build/tools/hpcap_lint" --json --root "$root" \
      > "$root/build/lint_findings.json" || {
    cat "$root/build/lint_findings.json"; exit 1; }
  echo "wrote $root/build/lint_findings.json"

  step "clang-tidy over src/ (skips with a notice when not installed)"
  cmake -DSOURCE_DIR="$root" -DBUILD_DIR="$root/build" \
        -P "$root/tools/clang_tidy_check.cmake"

  step "-Wthread-safety over src/ (skips with a notice when no clang++)"
  cmake -DSOURCE_DIR="$root" -P "$root/tools/thread_safety_check.cmake"

  step "all checks passed (lint)"
  exit 0
fi

step "default build"
cmake -B "$root/build" -S "$root" >/dev/null
cmake --build "$root/build" -j "$jobs"

step "full test suite"
ctest --test-dir "$root/build" --output-on-failure

step "bench-smoke guards (parallel overhead, batched observe, wire batching)"
ctest --test-dir "$root/build" -L bench-smoke --output-on-failure

step "net suite (hpcapd wire protocol + loopback)"
ctest --test-dir "$root/build" -L net --output-on-failure

step "chaos suite (seeded faults + reconnect/resume, deflake double-run)"
ctest --test-dir "$root/build" -L chaos --output-on-failure

step "ctrl suite (closed-loop capacity management, deflake double-run)"
ctest --test-dir "$root/build" -L ctrl --output-on-failure

if [ "$mode" = "full" ]; then
  step "tsan build + ctest -L tsan (includes net loopback/swap suites)"
  cmake -B "$root/build-tsan" -S "$root" -DHPCAP_TSAN=ON >/dev/null
  cmake --build "$root/build-tsan" -j "$jobs"
  ctest --test-dir "$root/build-tsan" -L tsan --output-on-failure
  ctest --test-dir "$root/build-tsan" -L net --output-on-failure
  ctest --test-dir "$root/build-tsan" -L chaos --output-on-failure
  ctest --test-dir "$root/build-tsan" -L ctrl --output-on-failure

  step "asan build + ctest -L asan (includes net protocol/loopback suites)"
  cmake -B "$root/build-asan" -S "$root" -DHPCAP_ASAN=ON >/dev/null
  cmake --build "$root/build-asan" -j "$jobs"
  ctest --test-dir "$root/build-asan" -L asan --output-on-failure
  ctest --test-dir "$root/build-asan" -L net --output-on-failure
  ctest --test-dir "$root/build-asan" -L chaos --output-on-failure
  ctest --test-dir "$root/build-asan" -L ctrl --output-on-failure

  step "ubsan build + ctest -L ubsan (net + ml + counters decode paths)"
  cmake -B "$root/build-ubsan" -S "$root" -DHPCAP_UBSAN=ON >/dev/null
  cmake --build "$root/build-ubsan" -j "$jobs"
  ctest --test-dir "$root/build-ubsan" -L ubsan --output-on-failure
fi

step "all checks passed ($mode)"
