# Runs clang-tidy (config: .clang-tidy at the repo root) over the src/
# translation units using the compile_commands.json the build exports.
# Invoked by the lint.clang_tidy ctest and by tools/check.sh lint.
#
# clang-tidy is optional tooling: when it is not on PATH this script
# prints a notice and exits 0; the ctest registration turns that message
# into a SKIP via SKIP_REGULAR_EXPRESSION, so the lint label stays green
# on machines without LLVM while still running the full check where it
# is available.
find_program(CLANG_TIDY_EXE NAMES clang-tidy clang-tidy-18 clang-tidy-17
             clang-tidy-16 clang-tidy-15 clang-tidy-14)
if(NOT CLANG_TIDY_EXE)
  message(STATUS "clang-tidy not installed — skipping the clang-tidy leg")
  return()
endif()

if(NOT EXISTS "${BUILD_DIR}/compile_commands.json")
  message(FATAL_ERROR
          "no compile_commands.json in ${BUILD_DIR} — configure with "
          "CMAKE_EXPORT_COMPILE_COMMANDS=ON (the default here)")
endif()

file(GLOB_RECURSE TIDY_SOURCES "${SOURCE_DIR}/src/*.cpp")
list(SORT TIDY_SOURCES)
set(FAILED 0)
foreach(src IN LISTS TIDY_SOURCES)
  execute_process(COMMAND "${CLANG_TIDY_EXE}" -p "${BUILD_DIR}" --quiet
                          "${src}"
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(STATUS "clang-tidy: ${src}\n${out}${err}")
    set(FAILED 1)
  endif()
endforeach()
if(FAILED)
  message(FATAL_ERROR "clang-tidy found issues (see above)")
endif()
message(STATUS "clang-tidy clean over src/")
