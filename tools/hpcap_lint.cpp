// hpcap_lint — the project's bespoke invariant checker.
//
// A deliberately small token/line-level linter (no libclang, C++17 only)
// that enforces the repo's correctness contracts where a compiler cannot:
//
//   banned-function   strcpy/sprintf/atoi/rand/std::time and friends are
//                     forbidden; rand/srand/time are additionally allowed
//                     inside src/sim/ and src/util/rng (seed plumbing).
//   no-const-cast     const_cast is forbidden in src/.
//   no-naked-new      naked new/delete expressions are forbidden in src/
//                     (use std::make_unique / containers; `= delete` and
//                     `operator new/delete` declarations are exempt).
//   bounded-decode    in the decode surfaces (src/net/protocol.*,
//                     src/ml/serialize.*, src/core/model_io.*) every
//                     resize/reserve/assign must take a count that passed
//                     through the read_count()/checked_count() guard
//                     pattern — a raw read_u32() or an unguarded variable
//                     feeding an allocation is a finding.
//   unordered-output  iterating a std::unordered_map/set while producing
//                     serialized or wire output (put_*/write_*/encode_*/
//                     save/operator<<) leaks nondeterministic order into
//                     bytes the determinism contract says are stable.
//   net-retry-bound   infinite-form loops in src/net/ that sleep or
//                     retry must reference a RetryPolicy / deadline /
//                     attempt budget inside the body — unbounded
//                     reconnect loops hang forever against a dead peer.
//   reactor-confinement  in src/net/, a scope holding a lock on the
//                     ShardGroup mutex (`group.mu` / `group_->mu`) must
//                     not post mailbox envelopes, wake another loop, or
//                     enqueue frames — the group lock is leaf-level in
//                     the sharded daemon's lock order.
//   pragma-once       every header's first code line is #pragma once.
//   include-hygiene   no duplicate includes, no "../" includes, no C
//                     headers with <cXXX> equivalents, and a src/ .cpp
//                     includes its own header first.
//   lock-order        cross-TU: every scope that acquires a second mutex
//                     while holding a first contributes a directed edge
//                     to a global acquisition graph; a cycle (including
//                     a self-edge — recursive acquisition) fails the
//                     tree. Edges come from util::MutexLock / lock_guard
//                     / unique_lock / scoped_lock sites in src/.
//   confinement-flow  in src/net/, reactor-owned values (Connection,
//                     SessionState, FrameRef, BatchArena) must not
//                     escape into a cross-thread seam (mailbox post,
//                     pool submit, std::thread) — those run on another
//                     thread after the owning reactor may have freed the
//                     object. `std::move(...)` hand-offs and seams
//                     annotated `// hpcap-lint: handoff` are exempt.
//   blocking-in-reactor  calls that park the thread (sleep_for/usleep/
//                     nanosleep/blocking connect/system) are forbidden
//                     inside EventLoop callbacks (add_fd / add_timer /
//                     set_wake_handler bodies) and `hot-path` annotated
//                     functions, including through same-file callees —
//                     a blocked reactor stalls every session it owns.
//
// Escape hatch: a comment containing `hpcap-lint: allow(rule-a, rule-b)`
// (or allow(all)) suppresses those rules on its own line, or on the next
// line when the comment stands alone. Every allow should carry a
// justification in the surrounding comment.
//
// `hpcap_lint --self-test` runs an embedded suite that seeds each
// violation class and asserts the rule fires (and that a clean twin and
// an allow()'d twin do not). `--json` emits the findings as a JSON array
// ({file, line, rule, severity, message}) for machine consumers; the
// exit-code contract is unchanged. `--compile-commands FILE` seeds the
// scan list from a compile_commands.json instead of the tree walk.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string path;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

// ---------------------------------------------------------------------------
// Scrubber: per-line view of the source with comment bodies and
// string/char-literal contents blanked out (structure preserved), plus the
// comment text per line (for allow() directives).
// ---------------------------------------------------------------------------

struct FileText {
  std::vector<std::string> raw;      // original text (for #include paths)
  std::vector<std::string> code;     // literals/comments blanked
  std::vector<std::string> comment;  // comment text, concatenated per line
};

FileText scrub(const std::string& content) {
  FileText out;
  {
    std::string line;
    for (char c : content) {
      if (c == '\n') {
        out.raw.push_back(line);
        line.clear();
      } else {
        line += c;
      }
    }
    out.raw.push_back(line);
  }
  std::string code_line, comment_line;
  enum class St { kCode, kLine, kBlock, kStr, kChar, kRaw };
  St st = St::kCode;
  std::string raw_delim;  // for raw strings: )delim"
  const std::size_t n = content.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = content[i];
    const char next = i + 1 < n ? content[i + 1] : '\0';
    if (c == '\n') {
      if (st == St::kLine) st = St::kCode;
      out.code.push_back(code_line);
      out.comment.push_back(comment_line);
      code_line.clear();
      comment_line.clear();
      continue;
    }
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLine;
          code_line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlock;
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          // Raw string? look back for R (and optional encoding prefix).
          bool raw = false;
          if (!code_line.empty() && code_line.back() == 'R') {
            std::size_t j = code_line.size();
            // u8R, uR, UR, LR all end in R immediately before the quote.
            raw = j < 2 || !(std::isalnum(static_cast<unsigned char>(
                                 code_line[j - 2])) ||
                             code_line[j - 2] == '_');
            raw = raw || code_line[j - 2] == 'u' || code_line[j - 2] == 'U' ||
                  code_line[j - 2] == 'L' || code_line[j - 2] == '8';
          }
          if (raw) {
            raw_delim = ")";
            std::size_t j = i + 1;
            while (j < n && content[j] != '(' && content[j] != '\n') {
              raw_delim += content[j];
              ++j;
            }
            raw_delim += '"';
            st = St::kRaw;
          } else {
            st = St::kStr;
          }
          code_line += '"';
        } else if (c == '\'') {
          // Digit separators (1'000'000) are not char literals.
          const bool digit_sep =
              !code_line.empty() &&
              std::isdigit(static_cast<unsigned char>(code_line.back())) &&
              std::isalnum(static_cast<unsigned char>(next));
          if (digit_sep) {
            code_line += '\'';
          } else {
            st = St::kChar;
            code_line += '\'';
          }
        } else {
          code_line += c;
        }
        break;
      case St::kLine:
        comment_line += c;
        code_line += ' ';
        break;
      case St::kBlock:
        if (c == '*' && next == '/') {
          st = St::kCode;
          code_line += "  ";
          ++i;
        } else {
          comment_line += c;
          code_line += ' ';
        }
        break;
      case St::kStr:
        if (c == '\\') {
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          st = St::kCode;
          code_line += '"';
        } else {
          code_line += ' ';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          code_line += "  ";
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
          code_line += '\'';
        } else {
          code_line += ' ';
        }
        break;
      case St::kRaw: {
        // Match the closing )delim" sequence.
        if (c == ')' && content.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) {
            if (i + k < n && content[i + k] == '\n') break;
            code_line += ' ';
          }
          code_line.back() = '"';
          i += raw_delim.size() - 1;
          st = St::kCode;
        } else {
          code_line += ' ';
        }
        break;
      }
    }
  }
  out.code.push_back(code_line);
  out.comment.push_back(comment_line);
  return out;
}

// ---------------------------------------------------------------------------
// Small token helpers over the scrubbed code.
// ---------------------------------------------------------------------------

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

struct Token {
  std::string text;
  std::size_t col = 0;  // 0-based start column
};

std::vector<Token> identifiers(const std::string& line) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < line.size()) {
    if (ident_char(line[i])) {
      std::size_t j = i;
      while (j < line.size() && ident_char(line[j])) ++j;
      out.push_back({line.substr(i, j - i), i});
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

char next_nonspace(const std::string& line, std::size_t from) {
  for (std::size_t i = from; i < line.size(); ++i)
    if (!std::isspace(static_cast<unsigned char>(line[i]))) return line[i];
  return '\0';
}

char prev_nonspace(const std::string& line, std::size_t before) {
  for (std::size_t i = before; i-- > 0;)
    if (!std::isspace(static_cast<unsigned char>(line[i]))) return line[i];
  return '\0';
}

std::string trim(const std::string& s) {
  std::size_t a = 0, b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
  return s.substr(a, b - a);
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------------
// allow() directives.
// ---------------------------------------------------------------------------

// allows[line] = set of rule names suppressed on that 0-based line.
std::vector<std::set<std::string>> parse_allows(const FileText& text) {
  std::vector<std::set<std::string>> allows(text.code.size());
  for (std::size_t i = 0; i < text.comment.size(); ++i) {
    const std::string& c = text.comment[i];
    const std::size_t at = c.find("hpcap-lint:");
    if (at == std::string::npos) continue;
    const std::size_t open = c.find("allow(", at);
    if (open == std::string::npos) continue;
    const std::size_t close = c.find(')', open);
    if (close == std::string::npos) continue;
    std::set<std::string> rules;
    std::string list = c.substr(open + 6, close - open - 6);
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ',')) {
      item = trim(item);
      if (!item.empty()) rules.insert(item);
    }
    allows[i].insert(rules.begin(), rules.end());
    // A comment-only line covers the next line of code too.
    if (trim(text.code[i]).empty() && i + 1 < allows.size())
      allows[i + 1].insert(rules.begin(), rules.end());
  }
  return allows;
}

bool allowed(const std::vector<std::set<std::string>>& allows,
             std::size_t line0, const std::string& rule) {
  if (line0 >= allows.size()) return false;
  return allows[line0].count(rule) > 0 || allows[line0].count("all") > 0;
}

// ---------------------------------------------------------------------------
// Rule implementations. Paths are repo-relative with forward slashes.
// ---------------------------------------------------------------------------

struct Ctx {
  std::string path;
  const FileText& text;
  const std::vector<std::set<std::string>>& allows;
  std::vector<Finding>& findings;

  void report(std::size_t line0, const std::string& rule,
              const std::string& msg) {
    if (allowed(allows, line0, rule)) return;
    findings.push_back({path, line0 + 1, rule, msg});
  }
};

bool in_src(const std::string& p) { return starts_with(p, "src/"); }

bool seed_exempt(const std::string& p) {
  // The simulator clock and the project Rng are the sanctioned seed
  // plumbing; everything else injects time/randomness through them.
  return starts_with(p, "src/sim/") || contains(p, "src/util/rng");
}

bool decode_scope(const std::string& p) {
  return starts_with(p, "src/net/protocol.") ||
         starts_with(p, "src/ml/serialize.") ||
         starts_with(p, "src/core/model_io.");
}

void rule_banned_function(Ctx& ctx) {
  const std::string& p = ctx.path;
  if (!(in_src(p) || starts_with(p, "tools/") || starts_with(p, "bench/")))
    return;
  static const std::set<std::string> kAlways = {
      "strcpy", "strcat",  "sprintf", "vsprintf", "gets",
      "atoi",   "atol",    "atoll",   "atof"};
  static const std::set<std::string> kSeed = {"rand", "srand", "rand_r",
                                              "time"};
  static const std::map<std::string, std::string> kWhy = {
      {"strcpy", "unbounded copy; use std::string or std::snprintf"},
      {"strcat", "unbounded append; use std::string"},
      {"sprintf", "unbounded format; use std::snprintf"},
      {"vsprintf", "unbounded format; use std::vsnprintf"},
      {"gets", "unbounded read; removed from the language"},
      {"atoi", "silent on garbage/overflow; use std::strtol and check end"},
      {"atol", "silent on garbage/overflow; use std::strtol and check end"},
      {"atoll", "silent on garbage/overflow; use std::strtoll and check end"},
      {"atof", "silent on garbage; use std::strtod and check end"},
      {"rand", "hidden global state breaks determinism; use util::Rng"},
      {"srand", "hidden global state breaks determinism; use util::Rng"},
      {"rand_r", "non-reproducible; use util::Rng"},
      {"time", "wall clock leaks nondeterminism; use sim/loop time"},
  };
  for (std::size_t i = 0; i < ctx.text.code.size(); ++i) {
    const std::string& line = ctx.text.code[i];
    for (const Token& t : identifiers(line)) {
      const bool always = kAlways.count(t.text) > 0;
      const bool seed = kSeed.count(t.text) > 0 && !seed_exempt(p);
      if (!always && !seed) continue;
      // Must look like a call, and not a member / suffix of another name.
      if (next_nonspace(line, t.col + t.text.size()) != '(') continue;
      const char before = prev_nonspace(line, t.col);
      if (before == '.' || before == '>') continue;  // obj.time(, obj->rand(
      ctx.report(i, "banned-function",
                 "banned function '" + t.text + "': " + kWhy.at(t.text));
    }
  }
}

void rule_no_const_cast(Ctx& ctx) {
  if (!in_src(ctx.path)) return;
  for (std::size_t i = 0; i < ctx.text.code.size(); ++i)
    for (const Token& t : identifiers(ctx.text.code[i]))
      if (t.text == "const_cast")
        ctx.report(i, "no-const-cast",
                   "const_cast is forbidden in src/ — restructure ownership "
                   "or make the accessor non-const");
}

void rule_no_naked_new(Ctx& ctx) {
  if (!in_src(ctx.path)) return;
  for (std::size_t i = 0; i < ctx.text.code.size(); ++i) {
    const std::string& line = ctx.text.code[i];
    const auto toks = identifiers(line);
    for (std::size_t k = 0; k < toks.size(); ++k) {
      const Token& t = toks[k];
      if (t.text != "new" && t.text != "delete") continue;
      // `operator new` / `operator delete` declarations are fine.
      if (k > 0 && toks[k - 1].text == "operator") continue;
      // `= delete;` / `= delete(` (deleted functions) are fine.
      if (t.text == "delete" && prev_nonspace(line, t.col) == '=') continue;
      ctx.report(i, "no-naked-new",
                 "naked '" + t.text +
                     "' in src/ — use std::make_unique, containers, or an "
                     "RAII owner");
    }
  }
}

// Collect the balanced-paren argument text of a call starting at the '('.
// Returns the argument text (parens excluded) or nullopt-ish empty+false
// if unbalanced within `max_lines`.
bool call_argument(const std::vector<std::string>& code, std::size_t line0,
                   std::size_t open_col, std::size_t max_lines,
                   std::string* out) {
  int depth = 0;
  std::string arg;
  for (std::size_t l = line0; l < code.size() && l < line0 + max_lines; ++l) {
    const std::string& s = code[l];
    std::size_t start = (l == line0) ? open_col : 0;
    for (std::size_t i = start; i < s.size(); ++i) {
      const char c = s[i];
      if (c == '(') {
        ++depth;
        if (depth == 1) continue;
      } else if (c == ')') {
        --depth;
        if (depth == 0) {
          *out = arg;
          return true;
        }
      }
      if (depth >= 1) arg += c;
    }
    arg += ' ';
  }
  return false;
}

void rule_bounded_decode(Ctx& ctx) {
  if (!decode_scope(ctx.path)) return;
  const auto& code = ctx.text.code;

  // Guarded identifiers: anything on a line that visibly bounds a count —
  // read_count()/checked_count() guards, or sizes of already-materialized
  // containers (.size()/.length()/remaining()).
  std::set<std::string> guarded;
  for (const std::string& line : code) {
    if (contains(line, "read_count(") || contains(line, "checked_count(") ||
        contains(line, ".size(") || contains(line, ".length(") ||
        contains(line, "remaining("))
      for (const Token& t : identifiers(line)) guarded.insert(t.text);
  }

  static const char* kRawReads[] = {
      "read_u8(",  "read_u16(", "read_u32(",    "read_u64(",
      "read_i32(", "read_f64(", "read_size(",   "read_double(",
      "strtol(",   "strtoll(",  "strtoul(",     "strtoull("};
  static const std::set<std::string> kNeutral = {
      "std",    "size_t",   "uint8_t",  "uint16_t", "uint32_t", "uint64_t",
      "int8_t", "int16_t",  "int32_t",  "int64_t",  "ptrdiff_t",
      "sizeof", "static_cast", "const", "true",     "false",    "char",
      "int",    "long",     "unsigned", "double",   "float",    "auto"};

  static const char* kAllocCalls[] = {".resize(", ".reserve(", ".assign("};
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (const char* pat : kAllocCalls) {
      std::size_t at = 0;
      while ((at = code[i].find(pat, at)) != std::string::npos) {
        const std::size_t open = at + std::strlen(pat) - 1;
        std::string arg;
        if (!call_argument(code, i, open, 10, &arg)) {
          ++at;
          continue;
        }
        at = open + 1;
        // Iterator-range assigns are not count allocations.
        if (contains(arg, "begin(")) continue;
        // The guard itself inside the argument bounds it.
        if (contains(arg, "read_count(") || contains(arg, "checked_count("))
          continue;
        bool raw = false;
        for (const char* r : kRawReads)
          if (contains(arg, r)) raw = true;
        if (raw) {
          ctx.report(i, "bounded-decode",
                     "allocation sized by a raw stream read — bound the "
                     "count with read_count()/checked_count() first");
          continue;
        }
        for (const Token& t : identifiers(arg)) {
          if (kNeutral.count(t.text)) continue;
          if (std::isdigit(static_cast<unsigned char>(t.text[0]))) continue;
          // kConstant-style compile-time caps.
          if (t.text.size() >= 2 && t.text[0] == 'k' &&
              std::isupper(static_cast<unsigned char>(t.text[1])))
            continue;
          // Function calls (size(), min(), ...) — the callee name itself
          // is not a count variable.
          const std::size_t after = arg.find_first_not_of(
              " \t", t.col + t.text.size());
          if (after != std::string::npos && arg[after] == '(') continue;
          if (guarded.count(t.text)) continue;
          ctx.report(i, "bounded-decode",
                     "count '" + t.text +
                         "' feeds an allocation but never passed through "
                         "read_count()/checked_count()");
        }
      }
    }
  }
}

void rule_unordered_output(Ctx& ctx) {
  if (!in_src(ctx.path)) return;
  const auto& code = ctx.text.code;

  // Names declared with an unordered container type (single-line decls —
  // the project's style keeps declarations on one line).
  std::set<std::string> unordered_names;
  for (const std::string& line : code) {
    if (!contains(line, "unordered_map<") && !contains(line, "unordered_set<"))
      continue;
    const auto toks = identifiers(line);
    if (toks.empty()) continue;
    // Declaration-ish lines end in ';' '{' or '=...'; take the last
    // identifier before any initializer as the variable name.
    const std::string t = trim(line);
    if (t.empty() || (t.back() != ';' && t.back() != '{')) continue;
    unordered_names.insert(toks.back().text);
  }
  if (unordered_names.empty()) return;

  static const char* kSinks[] = {"put_",   "write_", "encode_", "serialize",
                                 ".save(", "<<"};
  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    const std::size_t for_at = line.find("for");
    if (for_at == std::string::npos) continue;
    // Whole-word "for".
    if ((for_at > 0 && ident_char(line[for_at - 1])) ||
        (for_at + 3 < line.size() && ident_char(line[for_at + 3])))
      continue;
    const std::size_t open = line.find('(', for_at);
    if (open == std::string::npos) continue;
    std::string head;
    if (!call_argument(code, i, open, 4, &head)) continue;
    const std::size_t colon = head.find(':');
    if (colon == std::string::npos) continue;
    const std::string range = head.substr(colon + 1);
    bool over_unordered = false;
    for (const Token& t : identifiers(range))
      if (unordered_names.count(t.text)) over_unordered = true;
    if (!over_unordered) continue;
    // Scan the loop body: braces from the statement end, or one statement.
    std::string body;
    {
      int depth = 0;
      bool seen_brace = false;
      std::size_t scanned = 0;
      for (std::size_t l = i; l < code.size() && scanned < 200; ++l, ++scanned) {
        const std::string& s = code[l];
        std::size_t start = (l == i) ? line.find(')', open) : 0;
        if (l == i && start == std::string::npos) start = line.size();
        for (std::size_t k2 = start; k2 < s.size(); ++k2) {
          const char c = s[k2];
          if (c == '{') {
            ++depth;
            seen_brace = true;
          } else if (c == '}') {
            --depth;
          } else if (c == ';' && !seen_brace) {
            depth = -1;  // single-statement body ended
          }
          if (seen_brace || depth >= 0) body += c;
          if ((seen_brace && depth == 0 && c == '}') || depth < 0) {
            l = code.size();
            break;
          }
        }
        body += ' ';
      }
    }
    for (const char* s : kSinks) {
      if (contains(body, s)) {
        ctx.report(i, "unordered-output",
                   "iteration over unordered container feeds serialized or "
                   "wire output — order is nondeterministic; copy to a "
                   "sorted container first");
        break;
      }
    }
  }
}

void rule_pragma_once(Ctx& ctx) {
  if (ctx.path.size() < 2 ||
      ctx.path.compare(ctx.path.size() - 2, 2, ".h") != 0)
    return;
  for (std::size_t i = 0; i < ctx.text.code.size(); ++i) {
    const std::string t = trim(ctx.text.code[i]);
    if (t.empty()) continue;
    if (t != "#pragma once")
      ctx.report(i, "pragma-once",
                 "header's first code line must be #pragma once");
    return;
  }
  // Header with no code at all: still missing the guard.
  ctx.report(0, "pragma-once", "header is missing #pragma once");
}

void rule_include_hygiene(Ctx& ctx) {
  static const std::set<std::string> kCHeaders = {
      "assert.h", "ctype.h",  "errno.h",  "float.h",  "inttypes.h",
      "limits.h", "locale.h", "math.h",   "setjmp.h", "signal.h",
      "stdarg.h", "stddef.h", "stdint.h", "stdio.h",  "stdlib.h",
      "string.h", "time.h",   "wchar.h"};
  std::set<std::string> seen;
  // (line, path, index-among-all-includes) for quoted project includes.
  struct Quoted {
    std::size_t line;
    std::string path;
    std::size_t order;
  };
  std::vector<Quoted> quoted;
  std::size_t include_count = 0;
  for (std::size_t i = 0; i < ctx.text.code.size(); ++i) {
    if (!starts_with(trim(ctx.text.code[i]), "#include")) continue;
    // Use the raw text: the scrubber blanks quoted include paths.
    const std::string t = trim(ctx.text.raw[i]);
    const std::string inc = trim(t.substr(8));
    if (inc.empty()) continue;
    if (!seen.insert(inc).second)
      ctx.report(i, "include-hygiene", "duplicate include " + inc);
    const std::string inner =
        inc.size() >= 2 ? inc.substr(1, inc.size() - 2) : "";
    if (contains(inner, "../"))
      ctx.report(i, "include-hygiene",
                 "relative \"../\" include — include project headers as "
                 "\"dir/file.h\" from the src/ root");
    if (inc[0] == '<' && kCHeaders.count(inner))
      ctx.report(i, "include-hygiene",
                 "C header <" + inner + "> — use the <c...> equivalent");
    if (inc[0] == '"') quoted.push_back({i, inner, include_count});
    ++include_count;
  }
  // src/ .cpp files include their own header first (interface-first
  // ordering also proves the header is self-contained).
  if (in_src(ctx.path) && ctx.path.size() > 4 &&
      ctx.path.compare(ctx.path.size() - 4, 4, ".cpp") == 0) {
    const fs::path p(ctx.path);
    const std::string expected =
        p.parent_path().filename().string() + "/" + p.stem().string() + ".h";
    for (const Quoted& q : quoted) {
      if (q.path == expected && q.order != 0) {
        ctx.report(q.line, "include-hygiene",
                   "a source file includes its own header (\"" + expected +
                       "\") first");
        break;
      }
    }
  }
}

// Functions annotated `// hpcap-lint: hot-path` (the comment goes on or
// directly above the signature) promise steady-state allocation freedom.
// Inside their bodies:
//   * constructing a local std::vector is banned unless the declaration
//     line carries thread_local or static (the house scratch pattern);
//   * .push_back( / .emplace_back( growth is banned — pre-size a scratch
//     buffer and write by index instead.
// .resize()/.assign() on persistent scratch are fine (capacity is reused
// after warmup); a justified exception takes
// `// hpcap-lint: allow(hot-path-alloc)`.
void rule_hot_path_alloc(Ctx& ctx) {
  const std::string& p = ctx.path;
  if (!(in_src(p) || starts_with(p, "tools/") || starts_with(p, "bench/")))
    return;
  const auto& code = ctx.text.code;
  const auto& comment = ctx.text.comment;
  for (std::size_t i = 0; i < comment.size(); ++i) {
    const std::size_t at = comment[i].find("hpcap-lint:");
    if (at == std::string::npos) continue;
    const std::string rest = comment[i].substr(at + 11);
    if (!contains(rest, "hot-path") || contains(rest, "allow(")) continue;
    // Opening brace of the annotated function: the first '{' at or after
    // the annotation (signatures wrap, so look a few lines ahead).
    std::size_t open_line = code.size();
    std::size_t open_col = 0;
    for (std::size_t l = i; l < code.size() && l < i + 20; ++l) {
      const std::size_t c = code[l].find('{');
      if (c != std::string::npos) {
        open_line = l;
        open_col = c;
        break;
      }
    }
    if (open_line == code.size()) continue;
    // Brace-match to the end of the body (literals/comments are blanked
    // in the scrubbed view, so raw brace counting is exact).
    int depth = 0;
    std::size_t end_line = code.size() - 1;
    bool done = false;
    for (std::size_t l = open_line; l < code.size() && !done; ++l) {
      for (std::size_t k = (l == open_line ? open_col : 0);
           k < code[l].size(); ++k) {
        if (code[l][k] == '{') {
          ++depth;
        } else if (code[l][k] == '}' && --depth == 0) {
          end_line = l;
          done = true;
          break;
        }
      }
    }
    // Scan strictly after the opening-brace line, so vector-typed
    // parameters and return types never trip the rule.
    for (std::size_t l = open_line + 1; l <= end_line && l < code.size();
         ++l) {
      const std::string& s = code[l];
      if (contains(s, "std::vector<") && !contains(s, "thread_local") &&
          !contains(s, "static "))
        ctx.report(l, "hot-path-alloc",
                   "local std::vector constructed in a hot-path function — "
                   "use thread_local/static or member scratch");
      if (contains(s, ".push_back(") || contains(s, ".emplace_back("))
        ctx.report(l, "hot-path-alloc",
                   "container growth in a hot-path function — pre-size "
                   "scratch and write by index instead");
    }
  }
}

// The wire layer retries: reconnect loops, backoff sleeps, EINTR
// re-issues. Every one of them must be visibly bounded — an infinite-form
// loop (`for (;;)`, `while (true)`, `while (1)`) in src/net/ whose body
// sleeps or retries without referencing a RetryPolicy / deadline /
// attempt budget is how a client hangs forever against a dead daemon.
// The loop body must mention one of the budget identifiers (deadline,
// RetryPolicy, budget, max_attempts, exhausted, give_up) or carry a
// justified `// hpcap-lint: allow(net-retry-bound)`.
void rule_net_retry_bound(Ctx& ctx) {
  if (!starts_with(ctx.path, "src/net/")) return;
  const auto& code = ctx.text.code;
  static const char* kLoopForms[] = {"for (;;)", "for(;;)", "while (true)",
                                     "while(true)", "while (1)", "while(1)"};
  static const char* kIndicators[] = {"sleep", "backoff", "reconnect",
                                      "retry"};
  static const char* kBounds[] = {"deadline",     "RetryPolicy", "budget",
                                  "max_attempts", "exhausted",   "give_up"};
  for (std::size_t i = 0; i < code.size(); ++i) {
    bool is_loop = false;
    for (const char* form : kLoopForms) is_loop = is_loop || contains(code[i], form);
    if (!is_loop) continue;
    // Opening brace of the loop body (single-statement loops are not the
    // retry pattern this rule hunts).
    std::size_t open_line = code.size();
    std::size_t open_col = 0;
    for (std::size_t l = i; l < code.size() && l < i + 3; ++l) {
      const std::size_t c = code[l].find('{');
      if (c != std::string::npos) {
        open_line = l;
        open_col = c;
        break;
      }
    }
    if (open_line == code.size()) continue;
    std::string body;
    int depth = 0;
    bool done = false;
    for (std::size_t l = open_line; l < code.size() && !done; ++l) {
      for (std::size_t k = (l == open_line ? open_col : 0);
           k < code[l].size(); ++k) {
        if (code[l][k] == '{') {
          ++depth;
        } else if (code[l][k] == '}' && --depth == 0) {
          done = true;
          break;
        }
        body += code[l][k];
      }
      body += ' ';
    }
    bool retries = false;
    for (const char* ind : kIndicators) {
      std::size_t at = 0;
      while ((at = body.find(ind, at)) != std::string::npos) {
        // Calls into the io::*_retry EINTR-safe primitives are not retry
        // loops; everything else matching an indicator is.
        if (!(at > 0 && body[at - 1] == '_')) {
          retries = true;
          break;
        }
        ++at;
      }
    }
    if (!retries) continue;
    bool bounded = false;
    for (const char* b : kBounds) bounded = bounded || contains(body, b);
    if (bounded) continue;
    ctx.report(i, "net-retry-bound",
               "unbounded retry loop — reference a RetryPolicy / deadline / "
               "attempt budget inside the loop, or justify with "
               "allow(net-retry-bound)");
  }
}

// Sharded hpcapd's lock discipline (see server.h): the ShardGroup's
// directory mutex is leaf-level. A scope holding a lock on a group
// mutex must not post mailbox envelopes, wake another reactor's loop,
// or enqueue wire frames — each of those seams takes a per-shard lock
// or touches connection state owned by another reactor, and doing it
// under the group lock is exactly the ordering inversion that deadlocks
// cross-shard hand-off. The rule keys on the lock expression naming a
// group (`group.mu`, `group_->mu`); locks on other mutexes are out of
// scope. Justified exceptions carry
// `// hpcap-lint: allow(reactor-confinement)`.
void rule_reactor_confinement(Ctx& ctx) {
  if (!starts_with(ctx.path, "src/net/")) return;
  const auto& code = ctx.text.code;
  static const char* kLockForms[] = {"lock_guard", "unique_lock",
                                     "scoped_lock", "MutexLock"};
  static const char* kSeams[] = {".post(", "->post(", ".wake(", "->wake(",
                                 "enqueue("};
  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    bool is_lock = false;
    for (const char* form : kLockForms) is_lock = is_lock || contains(line, form);
    if (!is_lock || !contains(line, "group") || !contains(line, "mu"))
      continue;
    // The guard's scope: from the end of its declaration to the closing
    // brace of the block it lives in (brace-count on the scrubbed view).
    std::size_t start_col = line.find(';');
    if (start_col == std::string::npos) start_col = line.size();
    int depth = 0;
    for (std::size_t l = i; l < code.size(); ++l) {
      const std::string& s = code[l];
      std::size_t close_col = s.size();
      bool closed = false;
      for (std::size_t k = (l == i ? start_col : 0); k < s.size(); ++k) {
        if (s[k] == '{') {
          ++depth;
        } else if (s[k] == '}' && --depth < 0) {
          close_col = k;
          closed = true;
          break;
        }
      }
      if (l > i) {
        const std::string held = s.substr(0, close_col);
        for (const char* seam : kSeams) {
          if (!contains(held, seam)) continue;
          ctx.report(l, "reactor-confinement",
                     "'" + std::string(seam) +
                         "...)' while holding the ShardGroup mutex — the "
                         "group lock is leaf-level; collect under the lock, "
                         "post/wake/enqueue after releasing it");
          break;
        }
      }
      if (closed) break;
    }
  }
}

// Closed-loop controllers (src/ctrl/) actuate on a live site: a cap or a
// replica count written without a bound or outside the hysteresis path is
// how a control loop amplifies an outage. Two obligations:
//   * every function annotated `// hpcap-lint: actuation` (the comment
//     goes on or directly above the signature, like hot-path) must both
//     clamp what it writes (a clamp/min/max call in the body) and sit on
//     the cooldown/freeze path (the body references cooldown or kFrozen);
//   * plant-mutating seams (set_cap / set_replicas / set_population /
//     set_tier_replicas / set_admitted_rate_cap calls) appearing in
//     src/ctrl/ *outside* an annotated body fire — actuation must flow
//     through an audited, annotated function, not ad hoc writes.
// Justified exceptions carry `// hpcap-lint: allow(ctrl-bounded-actuation)`.
void rule_ctrl_bounded_actuation(Ctx& ctx) {
  if (!starts_with(ctx.path, "src/ctrl/")) return;
  const auto& code = ctx.text.code;
  const auto& comment = ctx.text.comment;
  static const char* kClamps[] = {"clamp(", "std::min(", "std::max("};
  static const char* kGuards[] = {"cooldown", "kFrozen"};
  static const char* kSeams[] = {"set_population(", "set_tier_replicas(",
                                 "set_replicas(", "set_cap(",
                                 "set_admitted_rate_cap("};
  // Pass 1: find annotated bodies, check their obligations, remember the
  // line ranges so pass 2 can exempt seam calls inside them.
  std::vector<std::pair<std::size_t, std::size_t>> bodies;
  for (std::size_t i = 0; i < comment.size(); ++i) {
    const std::size_t at = comment[i].find("hpcap-lint:");
    if (at == std::string::npos) continue;
    const std::string rest = comment[i].substr(at + 11);
    if (!contains(rest, "actuation") || contains(rest, "allow(")) continue;
    std::size_t open_line = code.size();
    std::size_t open_col = 0;
    for (std::size_t l = i; l < code.size() && l < i + 20; ++l) {
      const std::size_t c = code[l].find('{');
      if (c != std::string::npos) {
        open_line = l;
        open_col = c;
        break;
      }
    }
    if (open_line == code.size()) continue;
    int depth = 0;
    std::size_t end_line = code.size() - 1;
    bool done = false;
    for (std::size_t l = open_line; l < code.size() && !done; ++l) {
      for (std::size_t k = (l == open_line ? open_col : 0);
           k < code[l].size(); ++k) {
        if (code[l][k] == '{') {
          ++depth;
        } else if (code[l][k] == '}' && --depth == 0) {
          end_line = l;
          done = true;
          break;
        }
      }
    }
    bodies.emplace_back(open_line, end_line);
    bool clamped = false;
    bool guarded = false;
    for (std::size_t l = open_line; l <= end_line && l < code.size(); ++l) {
      for (const char* t : kClamps) clamped = clamped || contains(code[l], t);
      for (const char* t : kGuards) guarded = guarded || contains(code[l], t);
    }
    if (!clamped)
      ctx.report(i, "ctrl-bounded-actuation",
                 "actuation function writes without a clamp — bound the "
                 "value against the configured min/max before it reaches "
                 "the plant");
    if (!guarded)
      ctx.report(i, "ctrl-bounded-actuation",
                 "actuation function has no cooldown/freeze guard — "
                 "reference the cooldown state or the kFrozen path in the "
                 "body");
  }
  // Pass 2: plant seams outside any annotated body.
  for (std::size_t i = 0; i < code.size(); ++i) {
    bool seam = false;
    for (const char* t : kSeams) seam = seam || contains(code[i], t);
    if (!seam) continue;
    bool inside = false;
    for (const auto& b : bodies)
      inside = inside || (i >= b.first && i <= b.second);
    if (inside) continue;
    ctx.report(i, "ctrl-bounded-actuation",
               "plant-mutating call outside an annotated actuation "
               "function — route it through a `// hpcap-lint: actuation` "
               "body that clamps and cooldown-gates, or justify with "
               "allow(ctrl-bounded-actuation)");
  }
}

// ---------------------------------------------------------------------------
// Shared scanning helpers for the flow-aware rule families (ISSUE 10).
// ---------------------------------------------------------------------------

// Matches the '(' at (line, col) to its ')' across lines; returns the
// argument text (lines joined by spaces) and where the call ends.
std::string paren_slice(const std::vector<std::string>& code,
                        std::size_t line, std::size_t col,
                        std::size_t* end_line_out = nullptr) {
  std::string out;
  int depth = 0;
  for (std::size_t l = line; l < code.size() && l < line + 60; ++l) {
    for (std::size_t k = (l == line ? col : 0); k < code[l].size(); ++k) {
      const char c = code[l][k];
      if (c == '(') {
        if (depth++ > 0) out += c;
      } else if (c == ')') {
        if (--depth == 0) {
          if (end_line_out) *end_line_out = l;
          return out;
        }
        out += c;
      } else if (depth > 0) {
        out += c;
      }
    }
    if (depth > 0) out += ' ';
  }
  if (end_line_out) *end_line_out = code.size();
  return out;
}

// Brace-matches the '{' at (line, col); returns the closing brace's line
// (the last line when unbalanced).
std::size_t brace_close_line(const std::vector<std::string>& code,
                             std::size_t line, std::size_t col) {
  int depth = 0;
  for (std::size_t l = line; l < code.size(); ++l) {
    for (std::size_t k = (l == line ? col : 0); k < code[l].size(); ++k) {
      if (code[l][k] == '{') {
        ++depth;
      } else if (code[l][k] == '}' && --depth == 0) {
        return l;
      }
    }
  }
  return code.size() - 1;
}

// ---------------------------------------------------------------------------
// lock-order — cross-TU acquisition-order analysis.
//
// Every RAII lock site (util::MutexLock and the std scope-lock forms)
// names its mutex syntactically; a second site inside the first's guard
// scope contributes a directed edge `outer -> inner` to a global graph
// that lint_tree unions across every scanned file. Any cycle is a
// potential deadlock: two threads taking the same pair of mutexes in
// opposite orders. Labels are syntactic (identifier path of the lock
// argument, trailing underscores stripped), so distinct locals that
// happen to share a name can alias — the allow(lock-order) escape on the
// inner site severs a false edge with a written justification.
// ---------------------------------------------------------------------------

struct LockEdge {
  std::string from, to;  // mutex labels, outer -> inner
  std::string path;
  std::size_t line = 0;  // 1-based line of the inner acquisition
};

const char* kScopeLockForms[] = {"MutexLock", "lock_guard", "unique_lock",
                                 "scoped_lock"};

// `&group_->mu` -> "group.mu", `mu_` -> "mu", `g_sink_mu` -> "g_sink_mu".
std::string lock_label(const std::string& arg) {
  static const std::set<std::string> kNoise = {
      "std",  "util",  "this",   "adopt_lock", "defer_lock",
      "lock", "mutex", "native", "try_to_lock"};
  std::string label;
  for (const Token& t : identifiers(arg)) {
    if (kNoise.count(t.text)) continue;
    std::string part = t.text;
    while (!part.empty() && part.back() == '_') part.pop_back();
    if (part.empty()) continue;
    if (!label.empty()) label += '.';
    label += part;
  }
  return label;
}

struct LockSite {
  std::size_t line = 0;  // 0-based
  std::size_t col = 0;   // start of the lock-form token
  std::string label;
};

std::vector<LockSite> collect_lock_sites(const FileText& text) {
  std::vector<LockSite> sites;
  const auto& code = text.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (const Token& t : identifiers(code[i])) {
      bool form = false;
      for (const char* f : kScopeLockForms) form = form || t.text == f;
      if (!form) continue;
      // A '(' directly after the form token is a constructor declaration
      // (or an immediately-destroyed temporary — a bug of its own, not a
      // held lock); real sites declare a named guard variable.
      if (next_nonspace(code[i], t.col + t.text.size()) == '(') continue;
      // The constructor '(' — template args use <>, so the first '(' at
      // or after the form token opens the argument list.
      const std::size_t open = code[i].find('(', t.col + t.text.size());
      if (open == std::string::npos) continue;
      const std::string arg = paren_slice(code, i, open);
      // Adopting / deferred construction is not an acquisition here.
      if (contains(arg, "adopt_lock") || contains(arg, "defer_lock"))
        continue;
      const std::string label = lock_label(arg);
      if (label.empty()) continue;
      sites.push_back({i, t.col, label});
      break;  // one site per line is the codebase's lock style
    }
  }
  return sites;
}

// Appends the file's nested-acquisition edges to `out`. Only src/ files
// contribute: tests may stage deliberate ordering scenarios.
void collect_lock_edges(const std::string& rel_path, const FileText& text,
                        const std::vector<std::set<std::string>>& allows,
                        std::vector<LockEdge>& out) {
  if (!in_src(rel_path)) return;
  const auto& code = text.code;
  const auto sites = collect_lock_sites(text);
  for (std::size_t s = 0; s < sites.size(); ++s) {
    const LockSite& outer = sites[s];
    // Guard scope: from the end of the declaration to the closing brace
    // of the enclosing block (same walk as reactor-confinement).
    std::size_t start_col = code[outer.line].find(';', outer.col);
    if (start_col == std::string::npos) start_col = code[outer.line].size();
    std::size_t close_line = code.size() - 1;
    int depth = 0;
    bool closed = false;
    for (std::size_t l = outer.line; l < code.size() && !closed; ++l) {
      for (std::size_t k = (l == outer.line ? start_col : 0);
           k < code[l].size(); ++k) {
        if (code[l][k] == '{') {
          ++depth;
        } else if (code[l][k] == '}' && --depth < 0) {
          close_line = l;
          closed = true;
          break;
        }
      }
    }
    for (std::size_t n = s + 1; n < sites.size(); ++n) {
      const LockSite& inner = sites[n];
      if (inner.line <= outer.line || inner.line > close_line) continue;
      if (allowed(allows, inner.line, "lock-order")) continue;
      out.push_back({outer.label, inner.label, rel_path, inner.line + 1});
    }
  }
}

// Cycle detection over the unioned edge set. Self-edges are recursive
// acquisition (std::mutex deadlocks immediately); longer cycles are the
// classic opposite-order deadlock. Reports are deterministic: the graph
// iterates in label order and each cycle is reported once, anchored at
// the back edge that closes it.
void check_lock_order(const std::vector<LockEdge>& edges,
                      std::vector<Finding>& findings) {
  std::map<std::string, std::map<std::string, const LockEdge*>> adj;
  for (const LockEdge& e : edges) {
    if (e.from == e.to) {
      findings.push_back(
          {e.path, e.line, "lock-order",
           "recursive acquisition of '" + e.from +
               "' — the scope already holds this mutex (std::mutex "
               "self-deadlocks); restructure or justify a false alias "
               "with allow(lock-order)"});
      continue;
    }
    adj[e.from].emplace(e.to, &e);
    adj[e.to];  // ensure the node exists for deterministic iteration
  }
  std::set<std::string> done;
  std::vector<std::string> stack;
  std::set<std::string> on_stack;
  // Iterative DFS with an explicit path so cycle text lists every hop.
  std::function<void(const std::string&)> visit =
      [&](const std::string& u) {
        stack.push_back(u);
        on_stack.insert(u);
        auto it = adj.find(u);
        if (it != adj.end()) {
          for (const auto& [v, edge] : it->second) {
            if (on_stack.count(v)) {
              std::string msg = "lock-order cycle: ";
              std::size_t at = stack.size();
              while (at > 0 && stack[at - 1] != v) --at;
              for (std::size_t k = at - 1; k < stack.size(); ++k)
                msg += stack[k] + " -> ";
              msg += v + " (edge " + edge->path + ":" +
                     std::to_string(edge->line) +
                     " closes the cycle) — two threads taking these in "
                     "opposite orders deadlock";
              findings.push_back({edge->path, edge->line, "lock-order", msg});
            } else if (!done.count(v)) {
              visit(v);
            }
          }
        }
        on_stack.erase(u);
        stack.pop_back();
        done.insert(u);
      };
  for (const auto& [node, _] : adj)
    if (!done.count(node)) visit(node);
}

// ---------------------------------------------------------------------------
// confinement-flow — reactor-owned values must not cross threads.
//
// The sharded daemon's ownership rule (server.h): connections, session
// state, and the zero-copy decode views (FrameRef spans, BatchArena
// storage) belong to exactly one reactor and die with it. Handing one to
// a mailbox post, a pool submit, or a std::thread puts it on a thread
// that races the owner's teardown. Legitimate ownership transfers either
// move (`std::move(...)` — the source is dead afterwards) or carry a
// `// hpcap-lint: handoff` annotation naming the protocol that makes
// them safe.
// ---------------------------------------------------------------------------

void rule_confinement_flow(Ctx& ctx) {
  if (!starts_with(ctx.path, "src/net/")) return;
  const auto& code = ctx.text.code;
  const auto& comment = ctx.text.comment;
  static const char* kOwnedTypes[] = {"Connection", "SessionState",
                                      "FrameRef", "BatchArena"};
  static const char* kSeams[] = {".post(", "->post(", ".submit(",
                                 "->submit(", "std::thread"};
  // Pass 1: names declared as references/pointers/values of an owned
  // type anywhere in the file (a line-level approximation of scope).
  std::set<std::string> owned;
  for (const std::string& line : code) {
    const auto toks = identifiers(line);
    for (std::size_t k = 0; k + 1 < toks.size(); ++k) {
      bool is_owned = false;
      for (const char* t : kOwnedTypes) is_owned = is_owned || toks[k].text == t;
      if (!is_owned) continue;
      // `Type& name`, `Type* name`, `Type name` — only &/*/space between.
      const std::size_t from = toks[k].col + toks[k].text.size();
      const std::size_t to = toks[k + 1].col;
      bool decl = to > from;
      for (std::size_t c = from; c < to && decl; ++c)
        decl = line[c] == '&' || line[c] == '*' || line[c] == ' ' ||
               line[c] == '\t';
      if (!decl) continue;
      // `Connection& conn()` declares a function, not a value.
      if (next_nonspace(line, toks[k + 1].col + toks[k + 1].text.size()) ==
          '(')
        continue;
      owned.insert(toks[k + 1].text);
    }
  }
  if (owned.empty()) return;
  // Pass 2: seams whose argument list references an owned name.
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (const char* seam : kSeams) {
      const std::size_t at = code[i].find(seam);
      if (at == std::string::npos) continue;
      const std::size_t open = code[i].find('(', at);
      if (open == std::string::npos) continue;
      std::string args = paren_slice(code, i, open);
      // A move transfers ownership — blank the moved expression so its
      // name no longer reads as an escape.
      std::size_t mv = 0;
      while ((mv = args.find("std::move(", mv)) != std::string::npos) {
        int depth = 0;
        std::size_t k = args.find('(', mv);
        for (; k < args.size(); ++k) {
          if (args[k] == '(') ++depth;
          if (args[k] == ')' && --depth == 0) break;
          if (depth > 0) args[k] = ' ';
        }
        mv = k;
      }
      const bool handoff =
          contains(comment[i], "hpcap-lint: handoff") ||
          (i > 0 && contains(comment[i - 1], "hpcap-lint: handoff") &&
           trim(code[i - 1]).empty());
      for (const Token& t : identifiers(args)) {
        if (!owned.count(t.text)) continue;
        if (handoff) break;
        ctx.report(i, "confinement-flow",
                   "reactor-owned '" + t.text + "' escapes through '" +
                       std::string(seam) +
                       "...' to another thread — move ownership "
                       "(std::move), copy the data out, or document the "
                       "protocol with `// hpcap-lint: handoff`");
        break;
      }
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// blocking-in-reactor — nothing reachable from an EventLoop callback may
// park the thread.
//
// A reactor thread multiplexes every session on its loop; one sleeping
// callback stalls them all (and, in the sharded daemon, stalls mailbox
// draining for cross-shard hand-off). Entry points are the lambda bodies
// handed to add_fd/add_timer/set_wake_handler plus `hot-path` annotated
// functions; the walk follows same-file callees (the codebase's loop
// callbacks are file-local by construction).
// ---------------------------------------------------------------------------

void rule_blocking_in_reactor(Ctx& ctx) {
  if (!in_src(ctx.path)) return;
  const auto& code = ctx.text.code;
  const auto& comment = ctx.text.comment;
  static const char* kEntries[] = {"add_fd(", "add_timer(",
                                   "set_wake_handler("};
  static const char* kBanned[] = {"sleep_for(",  "sleep_until(",
                                  "::usleep(",   "::nanosleep(",
                                  "::sleep(",    "::system("};
  static const std::set<std::string> kKeywords = {
      "if", "for", "while", "switch", "catch", "return", "sizeof",
      "new", "delete", "throw", "co_await", "co_return"};

  // Same-file function definitions: identifier + (args) + '{', excluding
  // keywords and member access. Overloads share a name; all bodies walk.
  std::map<std::string, std::vector<std::pair<std::size_t, std::size_t>>>
      defs;
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (const Token& t : identifiers(code[i])) {
      if (kKeywords.count(t.text)) continue;
      const std::size_t after = t.col + t.text.size();
      if (next_nonspace(code[i], after) != '(') continue;
      const char before = prev_nonspace(code[i], t.col);
      if (before == '.' || before == ',' || before == ']') continue;
      const std::size_t open = code[i].find('(', after);
      std::size_t close_line = i;
      paren_slice(code, i, open, &close_line);
      if (close_line >= code.size()) continue;
      // A body '{' within a few lines of the ')', allowing const/
      // noexcept/override between — anything else is a plain call.
      bool found_body = false;
      std::size_t body_line = 0, body_col = 0;
      for (std::size_t l = close_line;
           l < code.size() && l <= close_line + 2 && !found_body; ++l) {
        for (std::size_t k = 0; k < code[l].size(); ++k) {
          const char c = code[l][k];
          if (c == '{') {
            found_body = true;
            body_line = l;
            body_col = k;
            break;
          }
          if (c == ';' || c == '=') break;  // declaration or statement
        }
      }
      if (!found_body) continue;
      defs[t.text].emplace_back(body_line,
                                brace_close_line(code, body_line, body_col));
    }
  }

  // Entry ranges: lambda bodies inside the loop-registration arguments,
  // plus hot-path annotated bodies (already latency contracts).
  std::vector<std::pair<std::size_t, std::size_t>> work;
  std::set<std::string> callees;  // named callbacks handed to the loop
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (const char* entry : kEntries) {
      const std::size_t at = code[i].find(entry);
      if (at == std::string::npos) continue;
      const std::size_t open = code[i].find('(', at);
      std::size_t arg_end = i;
      paren_slice(code, i, open, &arg_end);
      bool lambda = false;
      for (std::size_t l = i; l <= arg_end && l < code.size(); ++l) {
        const std::size_t b =
            code[l].find('{', l == i ? open : 0);
        if (b != std::string::npos && b < code[l].size()) {
          work.emplace_back(l, brace_close_line(code, l, b));
          lambda = true;
          break;
        }
      }
      if (!lambda)
        for (const Token& t : identifiers(paren_slice(code, i, open)))
          callees.insert(t.text);
    }
  }
  for (std::size_t i = 0; i < comment.size(); ++i) {
    const std::size_t at = comment[i].find("hpcap-lint:");
    if (at == std::string::npos) continue;
    const std::string rest = comment[i].substr(at + 11);
    if (!contains(rest, "hot-path") || contains(rest, "allow(")) continue;
    for (std::size_t l = i; l < code.size() && l < i + 20; ++l) {
      const std::size_t b = code[l].find('{');
      if (b != std::string::npos) {
        work.emplace_back(l, brace_close_line(code, l, b));
        break;
      }
    }
  }

  // BFS through same-file callees; report each banned line once.
  std::set<std::string> visited;
  for (const std::string& c : callees) {
    auto it = defs.find(c);
    if (it == defs.end()) continue;
    visited.insert(c);
    for (const auto& r : it->second) work.push_back(r);
  }
  std::set<std::size_t> reported;
  for (std::size_t w = 0; w < work.size(); ++w) {
    const auto [from, to] = work[w];
    for (std::size_t l = from; l <= to && l < code.size(); ++l) {
      for (const char* b : kBanned) {
        if (!contains(code[l], b)) continue;
        if (reported.count(l)) break;
        reported.insert(l);
        ctx.report(l, "blocking-in-reactor",
                   std::string("blocking call '") + b +
                       "...' reachable from a reactor callback — the "
                       "loop thread must never park; defer with "
                       "add_timer or move the wait to a worker thread");
        break;
      }
      for (const Token& t : identifiers(code[l])) {
        if (visited.count(t.text) || kKeywords.count(t.text)) continue;
        if (next_nonspace(code[l], t.col + t.text.size()) != '(') continue;
        auto it = defs.find(t.text);
        if (it == defs.end()) continue;
        visited.insert(t.text);
        for (const auto& r : it->second)
          if (r.first != from) work.push_back(r);
      }
    }
  }
}

const char* kAllRules[] = {"banned-function", "no-const-cast",
                           "no-naked-new",    "bounded-decode",
                           "unordered-output", "pragma-once",
                           "include-hygiene", "hot-path-alloc",
                           "net-retry-bound", "reactor-confinement",
                           "ctrl-bounded-actuation", "lock-order",
                           "confinement-flow", "blocking-in-reactor"};

std::vector<Finding> lint_content(const std::string& rel_path,
                                  const std::string& content) {
  std::vector<Finding> findings;
  const FileText text = scrub(content);
  const auto allows = parse_allows(text);
  Ctx ctx{rel_path, text, allows, findings};
  rule_banned_function(ctx);
  rule_no_const_cast(ctx);
  rule_no_naked_new(ctx);
  rule_bounded_decode(ctx);
  rule_unordered_output(ctx);
  rule_pragma_once(ctx);
  rule_include_hygiene(ctx);
  rule_hot_path_alloc(ctx);
  rule_net_retry_bound(ctx);
  rule_reactor_confinement(ctx);
  rule_ctrl_bounded_actuation(ctx);
  rule_confinement_flow(ctx);
  rule_blocking_in_reactor(ctx);
  // lock-order is cross-TU: lint_tree unions edges across every file and
  // runs the cycle check once. Per-file callers get per-file edges only.
  return findings;
}

// ---------------------------------------------------------------------------
// Tree walking.
// ---------------------------------------------------------------------------

bool lintable_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cpp";
}

std::vector<fs::path> collect_files(const fs::path& root) {
  static const char* kDirs[] = {"src", "tools", "bench", "tests",
                                "examples"};
  std::vector<fs::path> files;
  for (const char* d : kDirs) {
    const fs::path dir = root / d;
    if (!fs::exists(dir)) continue;
    for (auto it = fs::recursive_directory_iterator(dir);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory() &&
          starts_with(it->path().filename().string(), "build")) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && lintable_file(it->path()))
        files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Hygiene rules shape the tree; everything else is a correctness
// contract whose violation is a latent bug.
const char* severity_of(const std::string& rule) {
  return (rule == "pragma-once" || rule == "include-hygiene") ? "warning"
                                                              : "error";
}

int lint_tree(const fs::path& root, const std::vector<std::string>& only,
              bool json) {
  std::vector<fs::path> files;
  if (only.empty()) {
    files = collect_files(root);
  } else {
    for (const std::string& f : only) files.emplace_back(f);
  }
  std::size_t total = 0, scanned = 0;
  std::vector<LockEdge> edges;
  std::vector<Finding> all;
  for (const fs::path& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "hpcap_lint: cannot read %s\n", f.c_str());
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    std::string rel = fs::relative(f, root).generic_string();
    if (starts_with(rel, "./")) rel = rel.substr(2);
    const std::string content = ss.str();
    auto findings = lint_content(rel, content);
    {
      const FileText text = scrub(content);
      collect_lock_edges(rel, text, parse_allows(text), edges);
    }
    ++scanned;
    all.insert(all.end(), findings.begin(), findings.end());
  }
  check_lock_order(edges, all);
  if (json) {
    std::printf("[");
    for (std::size_t i = 0; i < all.size(); ++i) {
      const Finding& v = all[i];
      std::printf(
          "%s\n  {\"file\": \"%s\", \"line\": %zu, \"rule\": \"%s\", "
          "\"severity\": \"%s\", \"message\": \"%s\"}",
          i ? "," : "", json_escape(v.path).c_str(), v.line,
          json_escape(v.rule).c_str(), severity_of(v.rule),
          json_escape(v.message).c_str());
    }
    std::printf("%s]\n", all.empty() ? "" : "\n");
    total = all.size();
    std::fprintf(stderr, "hpcap_lint: %zu finding(s) in %zu files\n", total,
                 scanned);
  } else {
    for (const Finding& v : all) {
      ++total;
      std::printf("%s:%zu: [%s] %s\n", v.path.c_str(), v.line,
                  v.rule.c_str(), v.message.c_str());
    }
    if (total == 0)
      std::printf("hpcap_lint: %zu files clean\n", scanned);
    else
      std::printf("hpcap_lint: %zu violation(s) in %zu files scanned\n",
                  total, scanned);
  }
  return total == 0 ? 0 : 1;
}

// Extracts the "file" entries of a compile_commands.json (the exported
// compilation database) so the cross-TU pass can scan exactly the TUs
// the build sees. Tolerant, key-scanning parse — the format is stable
// and machine-written.
std::vector<std::string> files_from_compile_commands(
    const std::string& json) {
  std::vector<std::string> out;
  std::size_t at = 0;
  while ((at = json.find("\"file\"", at)) != std::string::npos) {
    std::size_t colon = json.find(':', at + 6);
    if (colon == std::string::npos) break;
    std::size_t open = json.find('"', colon);
    if (open == std::string::npos) break;
    std::string path;
    std::size_t k = open + 1;
    while (k < json.size() && json[k] != '"') {
      if (json[k] == '\\' && k + 1 < json.size()) ++k;
      path += json[k];
      ++k;
    }
    if (!path.empty()) out.push_back(path);
    at = k;
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Self-test: seed each violation class, assert the rule fires; assert the
// clean twin and the allow()'d twin do not.
// ---------------------------------------------------------------------------

struct Case {
  const char* name;
  const char* path;
  const char* source;
  const char* expect_rule;  // nullptr = expect clean
};

const Case kCases[] = {
    // banned-function
    {"banned.sprintf", "src/core/x.cpp",
     "void f(char* b){ sprintf(b, \"%d\", 1); }\n", "banned-function"},
    {"banned.atoi", "tools/x.cpp", "int f(const char* s){ return atoi(s); }\n",
     "banned-function"},
    {"banned.rand", "src/ml/x.cpp", "int f(){ return rand(); }\n",
     "banned-function"},
    {"banned.std_time", "src/core/x.cpp",
     "#include <ctime>\nlong f(){ return std::time(nullptr); }\n",
     "banned-function"},
    {"banned.rand_ok_in_sim", "src/sim/x.cpp", "int f(){ return rand(); }\n",
     nullptr},
    {"banned.member_time_ok", "src/core/x.cpp",
     "double f(Clock& c){ return c.time(); }\n", nullptr},
    {"banned.snprintf_ok", "src/core/x.cpp",
     "void f(char* b){ std::snprintf(b, 4, \"x\"); }\n", nullptr},
    {"banned.in_comment_ok", "src/core/x.cpp",
     "// never call sprintf(buf, ...) here\nint f();\n", nullptr},
    {"banned.in_string_ok", "src/core/x.cpp",
     "const char* kMsg = \"do not use atoi(x)\";\n", nullptr},
    {"banned.allow", "src/core/x.cpp",
     "// hpcap-lint: allow(banned-function) — exemplar in a test fixture\n"
     "int f(const char* s){ return atoi(s); }\n",
     nullptr},

    // no-const-cast
    {"constcast.fires", "src/sim/x.cpp",
     "int* f(const int* p){ return const_cast<int*>(p); }\n",
     "no-const-cast"},
    {"constcast.tools_ok", "tools/x.cpp",
     "int* f(const int* p){ return const_cast<int*>(p); }\n", nullptr},
    {"constcast.allow", "src/sim/x.cpp",
     "int* f(const int* p){ return const_cast<int*>(p); }"
     "  // hpcap-lint: allow(no-const-cast)\n",
     nullptr},

    // no-naked-new
    {"nakednew.new", "src/core/x.cpp", "int* f(){ return new int(3); }\n",
     "no-naked-new"},
    {"nakednew.delete", "src/core/x.cpp", "void f(int* p){ delete p; }\n",
     "no-naked-new"},
    {"nakednew.deleted_fn_ok", "src/core/x.cpp",
     "struct S { S(const S&) = delete; };\n", nullptr},
    {"nakednew.operator_ok", "tests/x.cpp",
     "void* operator new(std::size_t n);\n", nullptr},
    {"nakednew.tests_ok", "tests/x.cpp", "int* f(){ return new int(3); }\n",
     nullptr},

    // bounded-decode
    {"decode.raw_read", "src/net/protocol.cpp",
     "void f(PayloadReader& r, std::vector<int>& v){"
     " v.resize(r.read_u32()); }\n",
     "bounded-decode"},
    {"decode.unguarded_var", "src/ml/serialize.cpp",
     "void f(PayloadReader& r, std::vector<int>& v){\n"
     "  std::size_t n = r.read_u32();\n"
     "  v.resize(n);\n}\n",
     "bounded-decode"},
    {"decode.guarded_ok", "src/net/protocol.cpp",
     "void f(PayloadReader& r, std::vector<int>& v){\n"
     "  const std::size_t n = checked_count(r.read_u32(), kMaxTiers, \"t\");\n"
     "  v.resize(n);\n}\n",
     nullptr},
    {"decode.inline_guard_ok", "src/ml/serialize.cpp",
     "void f(std::istream& is, std::vector<double>& v){\n"
     "  v.resize(read_count(is, kMaxVectorElems, \"elem\"));\n}\n",
     nullptr},
    {"decode.size_of_existing_ok", "src/net/protocol.cpp",
     "void f(std::vector<int>& v, const std::vector<int>& w){"
     " v.reserve(w.size() + kHeaderSize); }\n",
     nullptr},
    {"decode.iterator_assign_ok", "src/net/protocol.cpp",
     "void f(std::vector<int>& v, const std::vector<int>& w){"
     " v.assign(w.begin() + 2, w.end()); }\n",
     nullptr},
    {"decode.out_of_scope_ok", "src/core/synopsis.cpp",
     "void f(std::vector<int>& v, std::size_t n){ v.resize(n); }\n", nullptr},
    {"decode.allow", "src/net/protocol.cpp",
     "void f(PayloadReader& r, std::vector<int>& v){\n"
     "  // hpcap-lint: allow(bounded-decode) — n is bounded by caller\n"
     "  v.resize(r.read_u32());\n}\n",
     nullptr},

    // unordered-output
    {"unordered.fires", "src/core/x.cpp",
     "#include <unordered_map>\n"
     "std::unordered_map<std::string, int> m_;\n"
     "void f(std::ostream& os){\n"
     "  for (const auto& [k, v] : m_) { os << k << v; }\n}\n",
     "unordered-output"},
    {"unordered.put_fires", "src/net/x.cpp",
     "#include <unordered_map>\n"
     "std::unordered_map<int, int> m_;\n"
     "void f(std::vector<std::uint8_t>& out){\n"
     "  for (const auto& [k, v] : m_) put_u32(out, v);\n}\n",
     "unordered-output"},
    {"unordered.no_sink_ok", "src/net/x.cpp",
     "#include <unordered_map>\n"
     "std::unordered_map<int, int> m_;\n"
     "int f(){ int s = 0; for (const auto& [k, v] : m_) { s += v; }"
     " return s; }\n",
     nullptr},
    {"unordered.ordered_map_ok", "src/core/x.cpp",
     "#include <map>\n"
     "std::map<std::string, int> m_;\n"
     "void f(std::ostream& os){ for (const auto& [k, v] : m_) os << k; }\n",
     nullptr},
    {"unordered.allow", "src/core/x.cpp",
     "#include <unordered_map>\n"
     "std::unordered_map<std::string, int> m_;\n"
     "void f(std::ostream& os){\n"
     "  // hpcap-lint: allow(unordered-output) — debug dump, order-free\n"
     "  for (const auto& [k, v] : m_) { os << k; }\n}\n",
     nullptr},

    // pragma-once
    {"pragma.missing", "src/core/x.h", "int f();\n", "pragma-once"},
    {"pragma.not_first", "src/core/x.h",
     "#include <vector>\n#pragma once\nint f();\n", "pragma-once"},
    {"pragma.ok", "src/core/x.h",
     "// comment first is fine\n#pragma once\nint f();\n", nullptr},
    {"pragma.cpp_exempt", "src/core/x.cpp", "int f() { return 1; }\n",
     nullptr},

    // include-hygiene
    {"include.duplicate", "src/core/x.cpp",
     "#include \"core/x.h\"\n#include <vector>\n#include <vector>\n",
     "include-hygiene"},
    {"include.relative", "src/core/x.cpp",
     "#include \"core/x.h\"\n#include \"../ml/svm.h\"\n", "include-hygiene"},
    {"include.c_header", "src/core/x.cpp",
     "#include \"core/x.h\"\n#include <stdlib.h>\n", "include-hygiene"},
    {"include.own_header_not_first", "src/core/x.cpp",
     "#include <vector>\n#include \"core/x.h\"\n", "include-hygiene"},
    {"include.own_header_first_ok", "src/core/x.cpp",
     "#include \"core/x.h\"\n#include <vector>\n#include <cstdlib>\n",
     nullptr},

    // net-retry-bound
    {"retrybound.sleep_fires", "src/net/x.cpp",
     "void f(){\n"
     "  for (;;) {\n"
     "    std::this_thread::sleep_for(std::chrono::seconds(1));\n"
     "    if (reconnect()) return;\n"
     "  }\n}\n",
     "net-retry-bound"},
    {"retrybound.while_true_fires", "src/net/x.cpp",
     "void f(){\n"
     "  while (true) {\n"
     "    if (try_send()) return;\n"
     "    backoff_and_wait();\n"
     "  }\n}\n",
     "net-retry-bound"},
    {"retrybound.deadline_ok", "src/net/x.cpp",
     "void f(Backoff& backoff, double give_up_at){\n"
     "  for (;;) {\n"
     "    if (backoff.exhausted()) throw TransportError(\"out of tries\");\n"
     "    std::this_thread::sleep_for(backoff.next_delay());\n"
     "    if (reconnect()) return;\n"
     "  }\n}\n",
     nullptr},
    {"retrybound.plain_event_loop_ok", "src/net/x.cpp",
     "void f(){\n"
     "  for (;;) {\n"
     "    const int n = poll_once();\n"
     "    if (n < 0) return;\n"
     "  }\n}\n",
     nullptr},
    {"retrybound.out_of_scope_ok", "src/core/x.cpp",
     "void f(){\n"
     "  for (;;) {\n"
     "    std::this_thread::sleep_for(std::chrono::seconds(1));\n"
     "    if (reconnect()) return;\n"
     "  }\n}\n",
     nullptr},
    {"retrybound.eintr_wrapper_ok", "src/net/x.cpp",
     "void f(int fd, std::uint8_t* buf){\n"
     "  for (;;) {\n"
     "    const ssize_t n = io::recv_retry(fd, buf, 1, 0);\n"
     "    if (n <= 0) break;\n"
     "  }\n}\n",
     nullptr},
    {"retrybound.allow", "src/net/x.cpp",
     "void f(){\n"
     "  // Runs for the proxy's lifetime.  hpcap-lint: allow(net-retry-bound)\n"
     "  for (;;) {\n"
     "    std::this_thread::sleep_for(std::chrono::seconds(1));\n"
     "    if (reconnect()) return;\n"
     "  }\n}\n",
     nullptr},

    // reactor-confinement
    {"confine.post_fires", "src/net/x.cpp",
     "void f(ShardGroup& group, ShardEnvelope env){\n"
     "  std::lock_guard<std::mutex> lock(group.mu);\n"
     "  group.post(1, std::move(env));\n}\n",
     "reactor-confinement"},
    {"confine.wake_fires", "src/net/x.cpp",
     "void f(ShardGroup* group_, EventLoop* peer){\n"
     "  std::scoped_lock lock(group_->mu);\n"
     "  peer->wake();\n}\n",
     "reactor-confinement"},
    {"confine.enqueue_fires", "src/net/x.cpp",
     "void f(ShardGroup& group, Connection& c, std::vector<std::uint8_t> b){\n"
     "  std::unique_lock<std::mutex> lock(group.mu);\n"
     "  enqueue(c, std::move(b));\n}\n",
     "reactor-confinement"},
    {"confine.after_scope_ok", "src/net/x.cpp",
     "void f(ShardGroup& group, ShardEnvelope env){\n"
     "  {\n"
     "    std::lock_guard<std::mutex> lock(group.mu);\n"
     "    touch_directory();\n"
     "  }\n"
     "  group.post(1, std::move(env));\n}\n",
     nullptr},
    {"confine.other_mutex_ok", "src/net/x.cpp",
     "void f(std::mutex& mu_, EventLoop& loop){\n"
     "  std::lock_guard<std::mutex> lock(mu_);\n"
     "  loop.wake();\n}\n",
     nullptr},
    {"confine.out_of_scope_ok", "src/core/x.cpp",
     "void f(ShardGroup& group, ShardEnvelope env){\n"
     "  std::lock_guard<std::mutex> lock(group.mu);\n"
     "  group.post(1, std::move(env));\n}\n",
     nullptr},
    {"confine.allow", "src/net/x.cpp",
     "void f(ShardGroup& group, ShardEnvelope env){\n"
     "  std::lock_guard<std::mutex> lock(group.mu);\n"
     "  // hpcap-lint: allow(reactor-confinement) — shutdown-only path\n"
     "  group.post(1, std::move(env));\n}\n",
     nullptr},

    // hot-path-alloc
    {"hotpath.local_vector_fires", "src/core/x.cpp",
     "// hpcap-lint: hot-path\n"
     "void f(std::size_t n, double* out){\n"
     "  std::vector<double> tmp(n);\n"
     "  out[0] = tmp[0];\n}\n",
     "hot-path-alloc"},
    {"hotpath.push_back_fires", "src/net/x.cpp",
     "// hpcap-lint: hot-path\n"
     "void f(std::vector<int>& scratch, int v){\n"
     "  scratch.push_back(v);\n}\n",
     "hot-path-alloc"},
    {"hotpath.thread_local_ok", "src/core/x.cpp",
     "// hpcap-lint: hot-path\n"
     "void f(std::size_t n, double* out){\n"
     "  thread_local std::vector<double> tmp;\n"
     "  tmp.resize(n);\n"
     "  out[0] = tmp[0];\n}\n",
     nullptr},
    {"hotpath.unannotated_ok", "src/core/x.cpp",
     "void f(std::size_t n, double* out){\n"
     "  std::vector<double> tmp(n);\n"
     "  tmp.push_back(1.0);\n"
     "  out[0] = tmp[0];\n}\n",
     nullptr},
    {"hotpath.vector_param_ok", "src/net/x.cpp",
     "// hpcap-lint: hot-path\n"
     "void f(const std::vector<double>& in,\n"
     "       std::vector<double>& out) {\n"
     "  out.resize(in.size());\n}\n",
     nullptr},
    {"hotpath.allow", "src/net/x.cpp",
     "// hpcap-lint: hot-path\n"
     "void f(std::vector<int>& pool, int v){\n"
     "  // hpcap-lint: allow(hot-path-alloc) — bounded recycling pool\n"
     "  pool.push_back(v);\n}\n",
     nullptr},

    // ctrl-bounded-actuation
    {"ctrl.unclamped_fires", "src/ctrl/x.cpp",
     "// hpcap-lint: actuation\n"
     "void C::apply(double cap){\n"
     "  if (cooldown_left_ > 0) return;\n"
     "  cap_ = cap;\n}\n",
     "ctrl-bounded-actuation"},
    {"ctrl.unguarded_fires", "src/ctrl/x.cpp",
     "// hpcap-lint: actuation\n"
     "void C::apply(double cap){\n"
     "  cap_ = std::clamp(cap, opts_.min_cap, opts_.max_cap);\n}\n",
     "ctrl-bounded-actuation"},
    {"ctrl.naked_seam_fires", "src/ctrl/x.cpp",
     "void C::tick(double cap){\n"
     "  plant_->set_admitted_rate_cap(cap);\n}\n",
     "ctrl-bounded-actuation"},
    {"ctrl.clean", "src/ctrl/x.cpp",
     "// hpcap-lint: actuation\n"
     "void C::apply(double cap){\n"
     "  cap_ = std::clamp(cap, opts_.min_cap, opts_.max_cap);\n"
     "  cooldown_left_ = opts_.cooldown_windows;\n"
     "  plant_->set_admitted_rate_cap(cap_);\n}\n",
     nullptr},
    {"ctrl.out_of_scope_ok", "src/testbed/x.cpp",
     "void f(P& p, double cap){ p.set_admitted_rate_cap(cap); }\n", nullptr},
    {"ctrl.allow", "src/ctrl/x.cpp",
     "void C::reset(){\n"
     "  // hpcap-lint: allow(ctrl-bounded-actuation) — init-time reset\n"
     "  plant_->set_replicas(0, 1);\n}\n",
     nullptr},

    // confinement-flow
    {"confine.post_ref", "src/net/x.cpp",
     "void S::hand(Connection& conn){\n"
     "  group_->post(conn.shard, conn);\n}\n",
     "confinement-flow"},
    {"confine.thread_capture", "src/net/x.cpp",
     "void S::spawn(SessionState* session){\n"
     "  worker_ = std::thread([session] { run(session); });\n}\n",
     "confinement-flow"},
    {"confine.submit", "src/net/x.cpp",
     "void S::defer(FrameRef& frame){\n"
     "  pool_.submit([&frame] { use(frame); });\n}\n",
     "confinement-flow"},
    {"confine.clean_envelope", "src/net/x.cpp",
     "void S::hand(Connection& conn){\n"
     "  ShardEnvelope env = pack(conn);\n"
     "  group_->post(env.shard, std::move(env));\n}\n",
     nullptr},
    {"confine.move_is_handoff", "src/net/x.cpp",
     "void S::hand(std::unique_ptr<SessionState> session){\n"
     "  group_->post(0, std::move(session));\n}\n",
     nullptr},
    {"confine.annotated_handoff", "src/net/x.cpp",
     "void S::hand(Connection& conn){\n"
     "  // hpcap-lint: handoff — target shard joins before teardown\n"
     "  group_->post(conn.shard, conn);\n}\n",
     nullptr},
    {"confine.allow", "src/net/x.cpp",
     "void S::hand(Connection& conn){\n"
     "  // hpcap-lint: allow(confinement-flow) — single-thread test rig\n"
     "  group_->post(conn.shard, conn);\n}\n",
     nullptr},

    // blocking-in-reactor
    {"blocking.timer_sleep", "src/net/x.cpp",
     "void S::arm(){\n"
     "  loop_.add_timer(1.0, [this] {\n"
     "    std::this_thread::sleep_for(std::chrono::milliseconds(5));\n"
     "  });\n}\n",
     "blocking-in-reactor"},
    {"blocking.fd_callback_usleep", "src/net/x.cpp",
     "void S::watch(int fd){\n"
     "  loop_.add_fd(fd, true, false, [this, fd](bool r, bool w) {\n"
     "    ::usleep(1000);\n"
     "  });\n}\n",
     "blocking-in-reactor"},
    {"blocking.through_callee", "src/net/x.cpp",
     "void S::settle(){\n"
     "  ::nanosleep(&ts_, nullptr);\n}\n"
     "void S::arm(){\n"
     "  loop_.add_timer(1.0, [this] { settle(); });\n}\n",
     "blocking-in-reactor"},
    {"blocking.hot_path", "src/core/x.cpp",
     "// hpcap-lint: hot-path — per-sample observe\n"
     "void M::observe(double v){\n"
     "  std::this_thread::sleep_for(std::chrono::microseconds(1));\n}\n",
     "blocking-in-reactor"},
    {"blocking.clean", "src/net/x.cpp",
     "void S::arm(){\n"
     "  loop_.add_timer(1.0, [this] { sweep_sessions(); });\n}\n",
     nullptr},
    {"blocking.worker_thread_clean", "src/net/x.cpp",
     "void S::pump(){\n"
     "  std::this_thread::sleep_for(std::chrono::milliseconds(5));\n}\n",
     nullptr},
    {"blocking.allow", "src/net/x.cpp",
     "void S::arm(){\n"
     "  loop_.add_timer(1.0, [this] {\n"
     "    // hpcap-lint: allow(blocking-in-reactor) — test-only throttle\n"
     "    std::this_thread::sleep_for(std::chrono::milliseconds(5));\n"
     "  });\n}\n",
     nullptr},
};

// Multi-file cases exercise the cross-TU lock-order analysis the way
// lint_tree runs it: edges unioned across files, cycles checked once.
struct MultiCase {
  const char* name;
  Case files[2];  // path/source pairs; expect_rule fields unused
  const char* expect_rule;  // nullptr = expect clean
};

const MultiCase kMultiCases[] = {
    {"lockorder.cycle_across_tus",
     {{nullptr, "src/net/a.cpp",
       "void f(){\n  util::MutexLock a(&alpha_mu_);\n"
       "  { util::MutexLock b(&beta_mu_); }\n}\n",
       nullptr},
      {nullptr, "src/net/b.cpp",
       "void g(){\n  util::MutexLock b(&beta_mu_);\n"
       "  { util::MutexLock a(&alpha_mu_); }\n}\n",
       nullptr}},
     "lock-order"},
    {"lockorder.consistent_order",
     {{nullptr, "src/net/a.cpp",
       "void f(){\n  util::MutexLock a(&alpha_mu_);\n"
       "  { util::MutexLock b(&beta_mu_); }\n}\n",
       nullptr},
      {nullptr, "src/net/b.cpp",
       "void g(){\n  util::MutexLock a(&alpha_mu_);\n"
       "  { util::MutexLock b(&beta_mu_); }\n}\n",
       nullptr}},
     nullptr},
    {"lockorder.recursive",
     {{nullptr, "src/util/a.cpp",
       "void f(){\n  util::MutexLock a(&mu_);\n"
       "  { util::MutexLock b(&mu_); }\n}\n",
       nullptr},
      {nullptr, "src/util/b.cpp", "\n", nullptr}},
     "lock-order"},
    {"lockorder.allow_severs_edge",
     {{nullptr, "src/net/a.cpp",
       "void f(){\n  util::MutexLock a(&alpha_mu_);\n"
       "  { util::MutexLock b(&beta_mu_); }\n}\n",
       nullptr},
      {nullptr, "src/net/b.cpp",
       "void g(){\n  util::MutexLock b(&beta_mu_);\n"
       "  // hpcap-lint: allow(lock-order) — distinct pool, false alias\n"
       "  { util::MutexLock a(&alpha_mu_); }\n}\n",
       nullptr}},
     nullptr},
    {"lockorder.adopt_not_acquisition",
     {{nullptr, "src/util/a.cpp",
       "void f(){\n  util::MutexLock a(&alpha_mu_);\n"
       "  std::unique_lock<std::mutex> n(alpha_mu_.native(), "
       "std::adopt_lock);\n  n.release();\n}\n",
       nullptr},
      {nullptr, "src/util/b.cpp", "\n", nullptr}},
     nullptr},
    {"lockorder.three_cycle",
     {{nullptr, "src/net/a.cpp",
       "void f(){\n  util::MutexLock a(&alpha_mu_);\n"
       "  { util::MutexLock b(&beta_mu_); }\n}\n"
       "void g(){\n  util::MutexLock b(&beta_mu_);\n"
       "  { util::MutexLock c(&gamma_mu_); }\n}\n",
       nullptr},
      {nullptr, "src/net/b.cpp",
       "void h(){\n  util::MutexLock c(&gamma_mu_);\n"
       "  { util::MutexLock a(&alpha_mu_); }\n}\n",
       nullptr}},
     "lock-order"},
};

int self_test() {
  int failures = 0;
  for (const Case& c : kCases) {
    const auto findings = lint_content(c.path, c.source);
    bool ok;
    std::string detail;
    if (c.expect_rule == nullptr) {
      ok = findings.empty();
      for (const Finding& f : findings)
        detail += " unexpected [" + f.rule + "] at line " +
                  std::to_string(f.line) + ": " + f.message;
    } else {
      ok = false;
      for (const Finding& f : findings)
        if (f.rule == c.expect_rule) ok = true;
      if (!ok) {
        detail = " expected a [" + std::string(c.expect_rule) + "] finding";
        for (const Finding& f : findings) detail += "; got [" + f.rule + "]";
        if (findings.empty()) detail += "; got none";
      }
    }
    std::printf("%-32s %s%s\n", c.name, ok ? "PASS" : "FAIL",
                detail.c_str());
    if (!ok) ++failures;
  }
  for (const MultiCase& mc : kMultiCases) {
    std::vector<LockEdge> edges;
    std::vector<Finding> findings;
    for (const Case& f : mc.files) {
      const FileText text = scrub(f.source);
      collect_lock_edges(f.path, text, parse_allows(text), edges);
    }
    check_lock_order(edges, findings);
    bool ok;
    std::string detail;
    if (mc.expect_rule == nullptr) {
      ok = findings.empty();
      for (const Finding& f : findings)
        detail += " unexpected [" + f.rule + "] at " + f.path + ":" +
                  std::to_string(f.line) + ": " + f.message;
    } else {
      ok = false;
      for (const Finding& f : findings)
        if (f.rule == mc.expect_rule) ok = true;
      if (!ok) detail = " expected a [" + std::string(mc.expect_rule) +
                        "] finding; got " +
                        std::to_string(findings.size());
    }
    std::printf("%-32s %s%s\n", mc.name, ok ? "PASS" : "FAIL",
                detail.c_str());
    if (!ok) ++failures;
  }
  const std::size_t n = sizeof(kCases) / sizeof(kCases[0]) +
                        sizeof(kMultiCases) / sizeof(kMultiCases[0]);
  std::printf("hpcap_lint self-test: %zu cases, %d failure(s)\n", n,
              failures);
  return failures == 0 ? 0 : 1;
}

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: hpcap_lint [--root DIR] [--json] "
               "[--compile-commands FILE] [FILE...]\n"
               "       hpcap_lint --self-test\n"
               "       hpcap_lint --list-rules\n"
               "\n"
               "Lints src/, tools/, bench/, tests/ and examples/ under\n"
               "--root (default:\n"
               "current directory) against the project invariants, including\n"
               "the cross-TU lock-order analysis. Explicit FILE arguments\n"
               "(or --compile-commands, which seeds them from a compilation\n"
               "database) restrict the scan. --json writes the findings as a\n"
               "JSON array of {file, line, rule, severity, message}.\n"
               "Exit: 0 clean, 1 findings, 2 usage/io error.\n");
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> files;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") return self_test();
    if (arg == "--list-rules") {
      for (const char* r : kAllRules) std::printf("%s\n", r);
      return 0;
    }
    if (arg == "--json") {
      json = true;
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        usage(stderr);
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--compile-commands") {
      if (i + 1 >= argc) {
        usage(stderr);
        return 2;
      }
      std::ifstream in(argv[++i], std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "hpcap_lint: cannot read %s\n", argv[i]);
        return 2;
      }
      std::stringstream ss;
      ss << in.rdbuf();
      for (const std::string& f : files_from_compile_commands(ss.str()))
        files.push_back(f);
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "hpcap_lint: unknown flag '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  std::error_code ec;
  const fs::path canon = fs::canonical(root, ec);
  if (ec) {
    std::fprintf(stderr, "hpcap_lint: bad --root '%s'\n", root.c_str());
    return 2;
  }
  return lint_tree(canon, files, json);
}
