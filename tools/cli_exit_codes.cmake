# Exit-code contract of the resilient CLI (tools/hpcapctl.cpp header):
#   2  usage error (strict parsing of the resilience flags)
#   3  transport failure (daemon unreachable / lost, budget exhausted)
#   5  daemon rejected the session
# (4 — a wire-protocol violation — needs a misbehaving peer and is
# exercised by the net_* test suites at the library level.)
#
# Inputs: -DHPCAPCTL=<path> -DHPCAPD=<path>

function(run_expect want what)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  if(NOT rc EQUAL ${want})
    message(FATAL_ERROR "${what}: expected exit ${want}, got '${rc}'")
  endif()
  message(STATUS "${what}: exit ${rc} (ok)")
endfunction()

# --- usage errors: a typo in a retry budget must never become a silent
# zero budget.
run_expect(2 "stream --retries abc"
           ${HPCAPCTL} stream --port 1 --trace nope.csv --retries abc)
run_expect(2 "stream --backoff-ms 0"
           ${HPCAPCTL} stream --port 1 --trace nope.csv --backoff-ms 0)
run_expect(2 "stream --deadline-s junk"
           ${HPCAPCTL} stream --port 1 --trace nope.csv --deadline-s junk)
run_expect(2 "stream --retries -3"
           ${HPCAPCTL} stream --port 1 --trace nope.csv --retries -3)
run_expect(2 "stream missing --trace/--port" ${HPCAPCTL} stream --port 1)
run_expect(2 "hpcapd --decision-replay 0"
           ${HPCAPD} --decision-replay 0)
run_expect(2 "hpcapd --session-linger junk"
           ${HPCAPD} --session-linger junk)

# --- transport failure: nothing listens on port 1. Reported before the
# trace file is ever opened, with and without a retry policy.
run_expect(3 "stream vs dead port"
           ${HPCAPCTL} stream --port 1 --trace nope.csv)
run_expect(3 "stream vs dead port with retries"
           ${HPCAPCTL} stream --port 1 --trace nope.csv
           --retries 2 --backoff-ms 10 --deadline-s 1)

# --- session rejection: a live daemon refuses a HELLO with the wrong
# tier count. Train a model, run the daemon on an ephemeral port in the
# background, and parse the advertised port from its startup line.
set(model "${CMAKE_CURRENT_BINARY_DIR}/cli_exit_model.hpcap")
set(log "${CMAKE_CURRENT_BINARY_DIR}/cli_exit_daemon.log")
execute_process(COMMAND ${HPCAPCTL} train --out ${model} --level hpc
                RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "hpcapctl train failed: ${rc}")
endif()

execute_process(
  COMMAND bash -c "'${HPCAPD}' --model '${model}' --port 0 > '${log}' 2>&1 & echo $!"
  OUTPUT_VARIABLE daemon_pid OUTPUT_STRIP_TRAILING_WHITESPACE)

set(port "")
foreach(attempt RANGE 100)
  if(EXISTS ${log})
    file(READ ${log} contents)
    if(contents MATCHES "listening on [0-9.]+:([0-9]+)")
      set(port ${CMAKE_MATCH_1})
      break()
    endif()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(port STREQUAL "")
  execute_process(COMMAND kill ${daemon_pid})
  message(FATAL_ERROR "daemon never advertised its port (see ${log})")
endif()

run_expect(5 "stream with mismatched tier count"
           ${HPCAPCTL} stream --port ${port} --trace nope.csv --num-tiers 9)
run_expect(5 "stream with mismatched tier count and retries"
           ${HPCAPCTL} stream --port ${port} --trace nope.csv --num-tiers 9
           --retries 2 --backoff-ms 10 --deadline-s 1)

execute_process(COMMAND kill ${daemon_pid})
