# Train -> evaluate -> monitor round trip through the on-disk model format.
set(model "${CMAKE_CURRENT_BINARY_DIR}/cli_model.hpcap")

execute_process(COMMAND ${HPCAPCTL} train --out ${model} --level hpc
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "hpcapctl train failed: ${rc}")
endif()

execute_process(COMMAND ${HPCAPCTL} evaluate --model ${model}
                        --workload ordering
                OUTPUT_VARIABLE out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "hpcapctl evaluate failed: ${rc}")
endif()
if(NOT out MATCHES "overload prediction: BA 0\\.")
  message(FATAL_ERROR "evaluate output missing BA line: ${out}")
endif()

execute_process(COMMAND ${HPCAPCTL} monitor --model ${model}
                        --workload browsing --duration 300
                OUTPUT_VARIABLE out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "hpcapctl monitor failed: ${rc}")
endif()
if(NOT out MATCHES "healthy|OVERLOAD")
  message(FATAL_ERROR "monitor output missing decisions: ${out}")
endif()
