# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_rng_test[1]_include.cmake")
include("/root/repo/build/tests/util_parallel_test[1]_include.cmake")
include("/root/repo/build/tests/ml_parallel_determinism_test[1]_include.cmake")
include("/root/repo/build/tests/util_stats_test[1]_include.cmake")
include("/root/repo/build/tests/util_matrix_table_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/tpcw_test[1]_include.cmake")
include("/root/repo/build/tests/counters_test[1]_include.cmake")
include("/root/repo/build/tests/ml_dataset_test[1]_include.cmake")
include("/root/repo/build/tests/ml_classifier_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/testbed_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/mtier_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
